package lint

import "testing"

// TestVerbVArgIndexes pins the printf-verb scanner: which operand
// indexes a bare %v consumes, with flags, widths, * operands, and the
// explicit-index bailout.
func TestVerbVArgIndexes(t *testing.T) {
	cases := []struct {
		format string
		want   []int
	}{
		{"no verbs", nil},
		{"%v", []int{0}},
		{"%d %v", []int{1}},
		{"%v %v", []int{0, 1}},
		{"100%% %v", []int{0}},
		{"%-8v", []int{0}},
		{"%.3f %v", []int{1}},
		{"%.4v", nil},        // precision pins the width; not a bare %v
		{"%.*v", nil},        // star precision is explicit too (consumes an arg)
		{"%*d %v", []int{2}}, // * width consumes an operand
		{"%[1]v %v", nil},    // explicit index: bail out rather than misattribute
		{"trailing %", nil},
	}
	for _, c := range cases {
		got := verbVArgIndexes(c.format)
		if len(got) != len(c.want) {
			t.Errorf("verbVArgIndexes(%q) = %v, want %v", c.format, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("verbVArgIndexes(%q) = %v, want %v", c.format, got, c.want)
				break
			}
		}
	}
}

func TestSeverityString(t *testing.T) {
	if SeverityWarn.String() != "warning" || SeverityError.String() != "error" {
		t.Error("severity strings drive GitHub annotation commands; they must be warning/error")
	}
}

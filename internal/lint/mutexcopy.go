package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerMutexCopy flags function signatures that pass or return
// synchronization state by value: a parameter, result, or receiver
// whose type (directly or through embedded/nested struct fields)
// contains a sync or sync/atomic primitive. A copied mutex guards a
// different memory word than the original — both sides "lock" and race
// anyway, and the race detector only catches it when the schedule
// cooperates. go vet's copylocks covers assignments; this check covers
// the API surface, where the mistake is usually introduced.
var AnalyzerMutexCopy = &Analyzer{
	Name:     "mutexcopy",
	Severity: SeverityError,
	Doc: "Forbids passing, returning, or receiving by value any type that " +
		"(transitively) contains a sync or sync/atomic primitive; hand out " +
		"pointers so there is exactly one lock word.",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				checkMutexCopyFunc(p, fn)
			}
		}
	},
}

func checkMutexCopyFunc(p *Pass, fn *ast.FuncDecl) {
	qualifier := func(other *types.Package) string {
		if other == p.Pkg {
			return ""
		}
		return other.Name()
	}
	reportField := func(field *ast.Field, role string) {
		t := p.TypeOf(field.Type)
		if t == nil || !containsLockByValue(t, nil) {
			return
		}
		name := types.TypeString(t, qualifier)
		p.Report(field.Type.Pos(),
			role+" of type "+name+" copies a sync primitive; the copy locks a different word than the original",
			"take a pointer (*"+name+") instead")
	}
	if fn.Recv != nil {
		for _, field := range fn.Recv.List {
			reportField(field, "value receiver")
		}
	}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			reportField(field, "parameter")
		}
	}
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			reportField(field, "result")
		}
	}
}

// containsLockByValue reports whether t, held by value, embeds
// synchronization state. Pointers, slices, maps, channels, interfaces,
// and function types break the chain: copying those copies a reference,
// which is fine.
func containsLockByValue(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true

	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic":
				// Every struct type in these packages is a primitive
				// that must not be copied (Mutex, WaitGroup, Once,
				// atomic.Int64, ...). Interfaces (sync.Locker) are not.
				_, isStruct := named.Underlying().(*types.Struct)
				return isStruct
			}
		}
	}

	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockByValue(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockByValue(u.Elem(), seen)
	}
	return false
}

package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"vqprobe/internal/lint"
)

// selfLintSetup resolves the real module root and its lint config —
// the benchmarks measure the exact workload `go run ./cmd/vqlint ./...`
// pays in CI.
func selfLintSetup(b *testing.B) (string, *lint.Runner) {
	b.Helper()
	wd, err := filepath.Abs(".")
	if err != nil {
		b.Fatal(err)
	}
	root, _, err := lint.ModuleRoot(wd)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := lint.LoadConfigFile(filepath.Join(root, lint.ConfigFileName))
	if err != nil {
		b.Fatal(err)
	}
	return root, &lint.Runner{Analyzers: lint.All(), Config: cfg}
}

// BenchmarkSelfLintCold is the first-run cost: every package parsed,
// type-checked (the source importer compiles the stdlib from scratch),
// and analyzed, with the cache written but never read.
func BenchmarkSelfLintCold(b *testing.B) {
	root, runner := selfLintSetup(b)
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cachePath := filepath.Join(dir, "cold.cache.json")
		os.Remove(cachePath)
		b.StartTimer()
		if _, err := lint.RunModule(root, nil, runner, cachePath); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelfLintWarm is the steady-state cost with an unchanged
// tree: content hashing plus a cache read, no type-checking at all.
// bench_report.py derives the cold/warm speedup recorded in
// reports/BENCH_PR9.json from this pair.
func BenchmarkSelfLintWarm(b *testing.B) {
	root, runner := selfLintSetup(b)
	cachePath := filepath.Join(b.TempDir(), "warm.cache.json")
	if _, err := lint.RunModule(root, nil, runner, cachePath); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lint.RunModule(root, nil, runner, cachePath)
		if err != nil {
			b.Fatal(err)
		}
		if res.Analyzed != 0 {
			b.Fatalf("warm run re-analyzed %d packages; the cache is not hitting", res.Analyzed)
		}
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// DeterministicMarker is the doc-comment marker that declares a
// function a deterministic sink: its inputs must never be derived from
// the wall clock or the global RNG, and the function itself must never
// transitively reach them. The fleet encoders, sketch merges, snapshot
// writers, and the obs sampling path carry it.
//
//	//lint:deterministic <why byte-identical output matters here>
const DeterministicMarker = "//lint:deterministic"

// SourceSite is one direct wall-clock or global-RNG call inside a
// function. Suppressed sites (//lint:ignore virtclock/detrand/walltaint
// on the line) are recorded but do not seed taint: the suppression
// documents that wall time is intentional there.
type SourceSite struct {
	Pos        token.Position `json:"pos"`
	What       string         `json:"what"` // e.g. "time.Now", "rand.Intn"
	Suppressed bool           `json:"suppressed,omitempty"`
}

// CallSite is one statically resolved outgoing call edge.
type CallSite struct {
	Sym string         `json:"sym"`
	Pos token.Position `json:"pos"`
}

// FuncSummary is the per-function fact record the module-wide analysis
// is built from. Summaries are self-contained and serializable, so the
// incremental cache can contribute a package's facts without re-loading
// its source.
type FuncSummary struct {
	Sym        string         `json:"sym"`
	Pos        token.Position `json:"pos"`
	Calls      []CallSite     `json:"calls,omitempty"`
	Sources    []SourceSite   `json:"sources,omitempty"`
	Sink       bool           `json:"sink,omitempty"`
	SinkReason string         `json:"sinkReason,omitempty"`
}

// PackageSummary aggregates one package's function summaries.
type PackageSummary struct {
	Path   string         `json:"path"`
	RelDir string         `json:"relDir"`
	Funcs  []*FuncSummary `json:"funcs"`
}

// taintSuppressors are the checks whose //lint:ignore directive stops a
// wall/rand call site from seeding taint: the three determinism checks
// share one audit trail.
var taintSuppressors = []string{"virtclock", "detrand", "walltaint"}

// classifySourceCall reports whether call reads the wall clock or draws
// from the global RNG, returning a human-readable name.
func classifySourceCall(info callResolver, call *ast.CallExpr) (what string, isSource bool) {
	pkgPath, name, ok := info.pkgFunc(call)
	if !ok {
		return "", false
	}
	switch pkgPath {
	case "time":
		if _, banned := wallClockFuncs[name]; banned {
			return "time." + name, true
		}
	case "math/rand", "math/rand/v2":
		if !detrandAllowed[name] {
			return "rand." + name, true
		}
	}
	return "", false
}

// callResolver abstracts Pass-free call resolution for the summarize
// phase.
type callResolver struct{ pkg *Package }

func (r callResolver) pkgFunc(call *ast.CallExpr) (string, string, bool) {
	return pkgFuncOf(r.pkg.Info, call)
}

// SummarizePackage computes pkg's function summaries. Directives must
// already be parsed onto the package (the runner does this first) so
// suppressed source sites are marked.
func SummarizePackage(pkg *Package) *PackageSummary {
	if pkg.summary != nil {
		return pkg.summary
	}
	res := callResolver{pkg}
	sum := &PackageSummary{Path: pkg.Path, RelDir: pkg.RelDir}
	for _, f := range pkg.Files {
		fileName := pkg.Fset.Position(f.Pos()).Filename
		dirs := pkg.directives[fileName]
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sym := declSymbolOf(pkg.Info, fn)
			if sym == "" {
				continue
			}
			fs := &FuncSummary{Sym: sym, Pos: pkg.Fset.Position(fn.Name.Pos())}
			fs.Sink, fs.SinkReason = deterministicMarker(fn.Doc)
			seenCall := map[string]bool{}
			// Function literals inside fn are attributed to fn: a
			// goroutine or closure reading the wall clock taints its
			// enclosing function. Coarse, but conservative in the
			// direction that keeps determinism provable.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				pos := pkg.Fset.Position(call.Pos())
				if what, isSource := classifySourceCall(res, call); isSource {
					fs.Sources = append(fs.Sources, SourceSite{
						Pos:        pos,
						What:       what,
						Suppressed: suppressesTaint(dirs, pos.Line),
					})
					return true
				}
				if sym, resolved := calleeSymbolOf(pkg.Info, call); resolved && !seenCall[sym] {
					seenCall[sym] = true
					fs.Calls = append(fs.Calls, CallSite{Sym: sym, Pos: pos})
				}
				return true
			})
			sum.Funcs = append(sum.Funcs, fs)
		}
	}
	pkg.summary = sum
	return sum
}

// suppressesTaint reports whether a directive on line names one of the
// determinism checks. A match counts as the directive being used:
// stopping a source from seeding module-wide taint is real work even
// when no call-site diagnostic lands on the directive's own line (a
// walltaint-only suppression surfaces nowhere else).
func suppressesTaint(dirs []ignoreDirective, line int) bool {
	found := false
	for i := range dirs {
		for _, check := range taintSuppressors {
			if dirs[i].matches(check, line) {
				dirs[i].used = true
				found = true
			}
		}
	}
	return found
}

// deterministicMarker scans a doc comment for the //lint:deterministic
// marker and returns its trailing reason.
func deterministicMarker(doc *ast.CommentGroup) (bool, string) {
	if doc == nil {
		return false, ""
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, DeterministicMarker); ok {
			return true, strings.TrimSpace(rest)
		}
	}
	return false, ""
}

// TaintInfo explains why a function is wall-tainted: Root is the
// originating source ("time.Now", "rand.Intn"), Via the direct callee
// the taint arrived through ("" when the function calls the source
// itself), Pos the call site inside the tainted function.
type TaintInfo struct {
	Root string
	Via  string
	Pos  token.Position
}

// ModuleFacts is the cross-package dataflow index: every function
// summary keyed by symbol, the transitive wall-taint set, and the
// deterministic sinks.
type ModuleFacts struct {
	Funcs map[string]*FuncSummary
	Taint map[string]*TaintInfo
}

// BuildModuleFacts merges package summaries and runs the taint fixpoint
// over the call graph. Propagation is breadth-first from the direct
// source sites with sorted worklists, so the recorded witness paths are
// deterministic regardless of package analysis order.
func BuildModuleFacts(sums []*PackageSummary) *ModuleFacts {
	m := &ModuleFacts{
		Funcs: map[string]*FuncSummary{},
		Taint: map[string]*TaintInfo{},
	}
	for _, ps := range sums {
		for _, fs := range ps.Funcs {
			m.Funcs[fs.Sym] = fs
		}
	}

	// Reverse call edges: callee symbol -> callers.
	type callerEdge struct {
		sym string
		pos token.Position
	}
	callers := map[string][]callerEdge{}
	for _, ps := range sums {
		for _, fs := range ps.Funcs {
			for _, c := range fs.Calls {
				callers[c.Sym] = append(callers[c.Sym], callerEdge{sym: fs.Sym, pos: c.Pos})
			}
		}
	}
	for _, edges := range callers {
		sort.Slice(edges, func(i, j int) bool { return edges[i].sym < edges[j].sym })
	}

	// Seed: functions with an unsuppressed direct source.
	var queue []string
	for _, ps := range sums {
		for _, fs := range ps.Funcs {
			for _, src := range fs.Sources {
				if src.Suppressed {
					continue
				}
				if m.Taint[fs.Sym] == nil {
					m.Taint[fs.Sym] = &TaintInfo{Root: src.What, Pos: src.Pos}
					queue = append(queue, fs.Sym)
				}
				break
			}
		}
	}
	sort.Strings(queue)

	// BFS up the reverse edges: a caller of a tainted function is
	// tainted.
	for len(queue) > 0 {
		sym := queue[0]
		queue = queue[1:]
		for _, edge := range callers[sym] {
			if m.Taint[edge.sym] != nil {
				continue
			}
			m.Taint[edge.sym] = &TaintInfo{Root: m.Taint[sym].Root, Via: sym, Pos: edge.pos}
			queue = append(queue, edge.sym)
		}
	}
	return m
}

// Tainted returns the taint record for sym, or nil.
func (m *ModuleFacts) Tainted(sym string) *TaintInfo { return m.Taint[sym] }

// Sink returns the summary of sym when it is a deterministic sink.
func (m *ModuleFacts) Sink(sym string) *FuncSummary {
	if fs := m.Funcs[sym]; fs != nil && fs.Sink {
		return fs
	}
	return nil
}

// TaintPath renders the witness call chain from sym to its root source,
// e.g. "EncodeText → stamp → time.Now". Symbols are shortened to their
// last path element for readability.
func (m *ModuleFacts) TaintPath(sym string) string {
	var parts []string
	seen := map[string]bool{}
	for cur := sym; cur != "" && !seen[cur]; {
		seen[cur] = true
		parts = append(parts, shortSym(cur))
		ti := m.Taint[cur]
		if ti == nil {
			break
		}
		if ti.Via == "" {
			parts = append(parts, ti.Root)
			break
		}
		cur = ti.Via
	}
	return strings.Join(parts, " -> ")
}

// shortSym trims the package path off a symbol: "a/b/c.T.M" -> "c.T.M".
func shortSym(sym string) string {
	if i := strings.LastIndex(sym, "/"); i >= 0 {
		return sym[i+1:]
	}
	return sym
}

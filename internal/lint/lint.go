// Package lint is a stdlib-only static-analysis engine for the vqprobe
// repository. It exists because the reproduction's scientific claims
// rest on invariants that unit tests can only spot-check at runtime:
//
//   - simulation time comes exclusively from the discrete-event virtual
//     clock, never the wall clock (DESIGN.md; the paper's controlled
//     testbed);
//   - training and evaluation are byte-identical for any worker count,
//     which forbids unseeded randomness and order-dependent map
//     iteration in output paths (docs/PERFORMANCE.md);
//   - disabled tracing is zero-cost and spans are always closed
//     (docs/OBSERVABILITY.md).
//
// The engine is deliberately small: go/parser + go/types with the
// source importer to load packages, a pluggable Analyzer interface, a
// parallel per-package runner, `//lint:ignore <check> <reason>`
// suppression directives, and text/JSON/GitHub-annotation output. See
// docs/LINTING.md for the analyzer catalog and the policy for adding
// new checks.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Severity classifies how a diagnostic should be treated by CI and the
// formatters. Errors fail the build; warnings annotate it.
type Severity int

const (
	// SeverityWarn marks style- or hygiene-level findings.
	SeverityWarn Severity = iota
	// SeverityError marks invariant violations (nondeterminism,
	// wall-clock leaks, leaked spans) that must be fixed or explicitly
	// suppressed with a reason.
	SeverityError
)

// String returns "warning" or "error", matching the GitHub annotation
// command names.
func (s Severity) String() string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding, positioned and attributed to the check
// that produced it.
type Diagnostic struct {
	Check    string         // analyzer name, e.g. "virtclock"
	Severity Severity       //
	Pos      token.Position // resolved file:line:col
	Message  string         // what is wrong
	Fix      string         // suggested fix text, may be empty

	// Edits are machine-applicable replacements realizing Fix; `vqlint
	// -fix` applies them (see ApplyFixes). Empty when the fix needs
	// human judgment.
	Edits []Edit

	// Suppressed is set by the runner when a `//lint:ignore` directive
	// covers this diagnostic; SuppressReason carries the directive's
	// written reason.
	Suppressed     bool
	SuppressReason string
}

// Analyzer is one pluggable check. Exactly one of Run / RunFile may be
// nil; the runner invokes Run once per package and RunFile once per
// file, so a check picks whichever granularity is natural.
type Analyzer struct {
	Name     string // short lower-case identifier used in directives and flags
	Doc      string // one-paragraph description shown by `vqlint -list`
	Severity Severity

	// Run is the package-level entry point (signature analysis,
	// cross-file state). May be nil.
	Run func(*Pass)

	// RunFile is the file-level entry point (syntax-tree walks). May be
	// nil.
	RunFile func(*Pass, *ast.File)
}

// Pass carries one type-checked package through one analyzer. The
// runner constructs a fresh Pass per (package, analyzer) pair, so
// analyzers may not retain state across calls.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path, e.g. "vqprobe/internal/simnet"
	RelDir   string // module-relative directory, "" for the module root
	Pkg      *types.Package
	Info     *types.Info

	// Facts holds the module-wide dataflow facts (call graph, taint
	// summaries, deterministic sinks) shared by every package of the
	// run. Nil when the runner analyzed a package in isolation without
	// building facts.
	Facts *ModuleFacts

	pkg   *Package // back-pointer for per-package caches (CFGs)
	diags *[]Diagnostic
}

// Report records a finding at pos with an optional suggested fix.
func (p *Pass) Report(pos token.Pos, message, fix string) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:    p.Analyzer.Name,
		Severity: p.Analyzer.Severity,
		Pos:      p.Fset.Position(pos),
		Message:  message,
		Fix:      fix,
	})
}

// Reportf is Report with fmt.Sprintf formatting and no fix text.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...), "")
}

// ReportPosition is Report for an already-resolved position — dataflow
// facts carry token.Position, not token.Pos, across packages.
func (p *Pass) ReportPosition(pos token.Position, message, fix string) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:    p.Analyzer.Name,
		Severity: p.Analyzer.Severity,
		Pos:      pos,
		Message:  message,
		Fix:      fix,
	})
}

// ReportEdits records a finding whose suggested fix is mechanical:
// edits carry the byte-offset replacements `vqlint -fix` applies.
func (p *Pass) ReportEdits(pos token.Pos, message, fix string, edits ...Edit) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:    p.Analyzer.Name,
		Severity: p.Analyzer.Severity,
		Pos:      p.Fset.Position(pos),
		Message:  message,
		Fix:      fix,
		Edits:    edits,
	})
}

// Offsets returns the byte-offset range of node for constructing Edits.
func (p *Pass) Offsets(n ast.Node) (file string, start, end int) {
	ps, pe := p.Fset.Position(n.Pos()), p.Fset.Position(n.End())
	return ps.Filename, ps.Offset, pe.Offset
}

// TypeOf returns the type of e, or nil when type information is
// unavailable (e.g. the package had type errors).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// PkgFunc resolves call to a package-level function (not a method) and
// returns its name and defining package path. ok is false for method
// calls, conversions, and calls of local function values.
func (p *Pass) PkgFunc(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	return pkgFuncOf(p.Info, call)
}

// pkgFuncOf is PkgFunc against raw type info, usable outside a Pass
// (the summarize phase runs before analyzers do).
func pkgFuncOf(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	if info == nil {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	var id *ast.Ident
	if isSel {
		id = sel.Sel
	} else if ident, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
		id = ident
	} else {
		return "", "", false
	}
	obj, found := info.Uses[id]
	if !found {
		return "", "", false
	}
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
		return "", "", false // method, not a package-level function
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// MethodCall resolves call to a method invocation and returns the
// method object and the receiver's static type. ok is false for plain
// function calls.
func (p *Pass) MethodCall(call *ast.CallExpr) (m *types.Func, recv types.Type, ok bool) {
	return methodCallOf(p.Info, call)
}

// methodCallOf is MethodCall against raw type info.
func methodCallOf(info *types.Info, call *ast.CallExpr) (m *types.Func, recv types.Type, ok bool) {
	if info == nil {
		return nil, nil, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, false
	}
	selection, found := info.Selections[sel]
	if !found || selection.Kind() != types.MethodVal {
		return nil, nil, false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn {
		return nil, nil, false
	}
	return fn, selection.Recv(), true
}

// HasMethod reports whether t (or *t) has a method with the given name
// in its method set.
func HasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			t = types.NewPointer(t)
		}
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// SortDiagnostics orders diagnostics by file, line, column, then check
// name, giving deterministic output regardless of analysis order.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

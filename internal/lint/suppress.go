package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveCheckName is the meta-check that validates suppression
// directives themselves. It cannot be excluded by configuration: a
// suppression without a written reason defeats the audit trail the
// directive exists to provide.
const DirectiveCheckName = "directive"

// directivePrefix is the comment form recognized for suppression:
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// placed either on the offending line or on the line directly above
// it. <check> may be "all". The reason is mandatory and free-form; it
// is carried into JSON output so audits can review every suppression.
const directivePrefix = "//lint:ignore"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	end    token.Position // end of the comment, for the stalesuppress autofix
	checks []string
	reason string

	// used is set by applySuppressions when the directive suppressed at
	// least one diagnostic this run; stalesuppress reports directives
	// that stay false even though every check they name ran.
	used bool
}

// matches reports whether the directive covers check `name` on `line`
// of its file: same line or the line immediately below the directive.
func (d *ignoreDirective) matches(name string, line int) bool {
	if line != d.pos.Line && line != d.pos.Line+1 {
		return false
	}
	return contains(d.checks, name) || contains(d.checks, "all")
}

// parseDirectives extracts the suppression directives from one file and
// reports malformed ones through report (as DirectiveCheckName
// diagnostics).
func parseDirectives(fset *token.FileSet, f *ast.File, known map[string]*Analyzer, report func(Diagnostic)) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			bad := func(msg string) {
				report(Diagnostic{
					Check:    DirectiveCheckName,
					Severity: SeverityError,
					Pos:      pos,
					Message:  msg,
					Fix:      "write `//lint:ignore <check> <reason>` with a non-empty reason",
				})
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				bad("malformed //lint:ignore: missing check name and reason")
				continue
			}
			checks := SplitList(fields[0])
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
			if reason == "" {
				bad("//lint:ignore " + fields[0] + " has no reason: every suppression must explain itself")
				continue
			}
			valid := true
			for _, name := range checks {
				if name == "all" || name == DirectiveCheckName {
					bad("//lint:ignore may not suppress " + name + ": name the specific check being silenced")
					valid = false
					break
				}
				if _, knownCheck := known[name]; !knownCheck {
					bad("//lint:ignore names unknown check " + name)
					valid = false
					break
				}
			}
			if !valid {
				continue
			}
			out = append(out, ignoreDirective{
				pos:    pos,
				end:    fset.Position(c.End()),
				checks: checks,
				reason: reason,
			})
		}
	}
	return out
}

// applySuppressions marks diagnostics covered by a directive in their
// file and flags each directive that earned its keep. Directive and
// stalesuppress diagnostics themselves are never suppressed.
func applySuppressions(diags []Diagnostic, byFile map[string][]ignoreDirective) {
	for i := range diags {
		d := &diags[i]
		if d.Check == DirectiveCheckName || d.Check == StaleSuppressCheckName {
			continue
		}
		dirs := byFile[d.Pos.Filename]
		for j := range dirs {
			if dirs[j].matches(d.Check, d.Pos.Line) {
				d.Suppressed = true
				d.SuppressReason = dirs[j].reason
				dirs[j].used = true
				break
			}
		}
	}
}

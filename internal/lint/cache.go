package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// cacheVersion invalidates every entry when the cache format or the
// analysis semantics change shape.
const cacheVersion = 1

// cacheFile is the on-disk incremental cache: one entry per package
// directory, keyed by a content hash that covers the package's own
// linted files AND its transitive module-internal imports. That key is
// sound because every diagnostic a package can produce depends only on
// its own source and its imports: taint propagates from callee to
// caller, sink markers live on callees, and suppression staleness is
// package-local. A package's callers can change freely without
// invalidating it.
type cacheFile struct {
	Version    int                    `json:"version"`
	ConfigHash string                 `json:"configHash"`
	Entries    map[string]*cacheEntry `json:"entries"`
}

// cacheEntry holds one package's cached results. Summary rides along so
// a cached package still contributes its call-graph and source facts to
// the module-wide taint fixpoint when other packages re-analyze.
type cacheEntry struct {
	Key     string          `json:"key"`
	Diags   []Diagnostic    `json:"diags"`
	Summary *PackageSummary `json:"summary"`
}

// ModuleRunResult reports what a cached run did.
type ModuleRunResult struct {
	Diags      []Diagnostic
	Analyzed   int     // packages loaded and analyzed this run
	Cached     int     // packages served from the cache
	TypeErrors []error // loader complaints from freshly analyzed packages
}

// RunModule loads and analyzes the module's dirs with r. cachePath,
// when non-empty, enables the incremental cache: packages whose content
// key matches are served from the file without parsing or
// type-checking, which is where nearly all of a run's time goes (the
// source importer compiles the stdlib from scratch).
func RunModule(root string, dirs []string, r *Runner, cachePath string) (ModuleRunResult, error) {
	var res ModuleRunResult
	if dirs == nil {
		var err error
		dirs, err = ListPackageDirs(root)
		if err != nil {
			return res, err
		}
	}

	if cachePath == "" {
		loader := NewLoader()
		pkgs, err := loader.LoadModule(root, dirs)
		if err != nil {
			return res, err
		}
		res.Diags = r.Run(pkgs)
		res.Analyzed = len(pkgs)
		for _, p := range pkgs {
			res.TypeErrors = append(res.TypeErrors, p.TypeErrors...)
		}
		return res, nil
	}

	keys, err := moduleContentKeys(root)
	if err != nil {
		return res, err
	}
	cfgHash := runConfigHash(r)

	cache := readCache(cachePath)
	if cache.Version != cacheVersion || cache.ConfigHash != cfgHash {
		cache = &cacheFile{Version: cacheVersion, ConfigHash: cfgHash, Entries: map[string]*cacheEntry{}}
	}

	// Split the selection into cache hits and packages to analyze, and
	// gather every valid summary module-wide: facts from unchanged
	// packages feed the taint fixpoint for free.
	var toLoad []string
	var cachedDiags []Diagnostic
	var extra []*PackageSummary
	loading := map[string]bool{}
	for _, rel := range dirs {
		e := cache.Entries[rel]
		if e != nil && e.Key == keys[rel] {
			cachedDiags = append(cachedDiags, e.Diags...)
			res.Cached++
			continue
		}
		toLoad = append(toLoad, rel)
		loading[rel] = true
	}
	for rel, e := range cache.Entries {
		if !loading[rel] && e.Key == keys[rel] && e.Summary != nil {
			extra = append(extra, e.Summary)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].Path < extra[j].Path })

	var fresh []Diagnostic
	if len(toLoad) > 0 {
		loader := NewLoader()
		pkgs, err := loader.LoadModule(root, toLoad)
		if err != nil {
			return res, err
		}
		fresh = r.RunWith(pkgs, extra)
		res.Analyzed = len(pkgs)
		for _, p := range pkgs {
			res.TypeErrors = append(res.TypeErrors, p.TypeErrors...)
		}

		// Fold the fresh results back into the cache, grouped by the
		// package directory each diagnostic's file lives in.
		byDir := map[string][]Diagnostic{}
		for _, d := range fresh {
			rel, relErr := filepath.Rel(root, filepath.Dir(d.Pos.Filename))
			if relErr != nil {
				continue
			}
			rel = filepath.ToSlash(rel)
			if rel == "." {
				rel = ""
			}
			byDir[rel] = append(byDir[rel], d)
		}
		for _, pkg := range pkgs {
			cache.Entries[pkg.RelDir] = &cacheEntry{
				Key:     keys[pkg.RelDir],
				Diags:   byDir[pkg.RelDir],
				Summary: pkg.summary,
			}
		}
		// Drop entries for directories that no longer exist.
		for rel := range cache.Entries {
			if _, ok := keys[rel]; !ok {
				delete(cache.Entries, rel)
			}
		}
		if err := writeCache(cachePath, cache); err != nil {
			return res, err
		}
	}

	res.Diags = append(cachedDiags, fresh...)
	SortDiagnostics(res.Diags)
	return res, nil
}

// readCache loads the cache file; any problem (missing, corrupt, stale
// schema) yields an empty cache — the cache is an accelerator, never a
// correctness input.
func readCache(path string) *cacheFile {
	empty := &cacheFile{Version: 0, Entries: map[string]*cacheEntry{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return empty
	}
	var c cacheFile
	if json.Unmarshal(data, &c) != nil || c.Entries == nil {
		return empty
	}
	return &c
}

func writeCache(path string, c *cacheFile) error {
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// runConfigHash keys the cache on everything besides file contents that
// changes analysis results: the analyzer set and the effective config.
func runConfigHash(r *Runner) string {
	h := sha256.New()
	fmt.Fprintln(h, "v"+strconv.Itoa(cacheVersion))
	for _, a := range r.Analyzers {
		fmt.Fprintln(h, a.Name)
	}
	if r.Config != nil {
		cfg, _ := json.Marshal(struct {
			Checks     []string
			Exclude    []string
			DirExclude map[string][]string
		}{r.Config.Checks, r.Config.Exclude, r.Config.DirExclude})
		h.Write(cfg)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// moduleContentKeys computes, for every package directory of the
// module, a hash covering its own linted files and those of its
// transitive module-internal imports. Import edges come from a
// lightweight ImportsOnly parse — no type checking.
func moduleContentKeys(root string) (map[string]string, error) {
	_, modPath, err := ModuleRoot(root)
	if err != nil {
		return nil, err
	}
	dirs, err := ListPackageDirs(root)
	if err != nil {
		return nil, err
	}

	own := make(map[string]string, len(dirs))
	deps := make(map[string][]string, len(dirs))
	dirSet := map[string]bool{}
	for _, rel := range dirs {
		dirSet[rel] = true
	}
	fset := token.NewFileSet()
	for _, rel := range dirs {
		dir := filepath.Join(root, filepath.FromSlash(rel))
		if rel == "" {
			dir = root
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		h := sha256.New()
		var imps []string
		impSeen := map[string]bool{}
		for _, e := range entries {
			if e.IsDir() || !isLintedGoFile(e.Name()) {
				continue
			}
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			fmt.Fprintln(h, e.Name(), len(data))
			h.Write(data)
			f, err := parser.ParseFile(fset, path, data, parser.ImportsOnly)
			if err != nil {
				continue // a syntax error also changes the content hash
			}
			for _, imp := range f.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				var depRel string
				switch {
				case p == modPath:
					depRel = ""
				case strings.HasPrefix(p, modPath+"/"):
					depRel = strings.TrimPrefix(p, modPath+"/")
				default:
					continue
				}
				if dirSet[depRel] && depRel != rel && !impSeen[depRel] {
					impSeen[depRel] = true
					imps = append(imps, depRel)
				}
			}
		}
		own[rel] = hex.EncodeToString(h.Sum(nil))
		sort.Strings(imps)
		deps[rel] = imps
	}

	// Transitive closure: key(dir) = H(own(dir), key(dep)...), memoized.
	// Import cycles cannot occur in compiling Go code; the visiting
	// guard just prevents runaway on broken source.
	keys := make(map[string]string, len(dirs))
	visiting := map[string]bool{}
	var key func(rel string) string
	key = func(rel string) string {
		if k, ok := keys[rel]; ok {
			return k
		}
		if visiting[rel] {
			return "cycle"
		}
		visiting[rel] = true
		h := sha256.New()
		fmt.Fprintln(h, own[rel])
		for _, dep := range deps[rel] {
			fmt.Fprintln(h, dep, key(dep))
		}
		k := hex.EncodeToString(h.Sum(nil))
		visiting[rel] = false
		keys[rel] = k
		return k
	}
	for _, rel := range dirs {
		key(rel)
	}
	return keys, nil
}

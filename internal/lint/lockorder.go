package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// AnalyzerLockOrder reports inconsistent pairwise mutex acquisition
// order within a package: one function locks A then B while holding A,
// another locks B then A while holding B. Two goroutines running those
// functions concurrently can each hold one mutex and wait forever on
// the other — the classic ABBA deadlock, which no unit test reliably
// reproduces because it needs the losing interleaving.
//
// Mutexes are identified structurally: a field access `x.mu` is keyed
// by the receiver's type and field name (so every Server instance's mu
// is the same lock for ordering purposes), a plain variable by its
// object. A deferred Unlock keeps the mutex held for the rest of the
// function, which is exactly how the repo's hot paths hold locks.
var AnalyzerLockOrder = &Analyzer{
	Name:     "lockorder",
	Severity: SeverityWarn,
	Doc: "Reports pairs of mutexes acquired in opposite orders by different code " +
		"paths of the same package (ABBA deadlock risk). Mutex identity is the " +
		"receiver type + field for fields, the variable for package/local vars.",
	Run: runLockOrder,
}

// lockPair is one observed ordering: second acquired while first held.
type lockPair struct {
	first, second string
}

type lockSite struct {
	pair lockPair
	pos  token.Position
}

func runLockOrder(p *Pass) {
	var sites []lockSite
	for _, fi := range p.Functions() {
		sites = append(sites, lockOrderFunc(p, fi)...)
	}

	// Index the observed directions; a pair conflicts when both (A,B)
	// and (B,A) occurred somewhere in the package.
	seen := map[lockPair]lockSite{}
	for _, s := range sites {
		if _, ok := seen[s.pair]; !ok {
			seen[s.pair] = s
		}
	}
	var conflicts []lockSite
	for pair, site := range seen {
		rev := lockPair{first: pair.second, second: pair.first}
		if _, ok := seen[rev]; ok {
			conflicts = append(conflicts, site)
		}
	}
	sort.Slice(conflicts, func(i, j int) bool {
		a, b := conflicts[i].pos, conflicts[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, c := range conflicts {
		p.ReportPosition(c.pos,
			"mutex "+c.pair.second+" acquired while holding "+c.pair.first+
				", but elsewhere in this package they are acquired in the opposite order (ABBA deadlock risk)",
			"pick one acquisition order for "+c.pair.first+" and "+c.pair.second+" and use it everywhere")
	}
}

// lockOrderFunc walks one function in statement order tracking the held
// set: Lock/RLock acquires, direct Unlock/RUnlock releases, deferred
// unlocks hold to function end.
func lockOrderFunc(p *Pass, fi *FuncInfo) []lockSite {
	var held []string
	var sites []lockSite
	inspectSkipFuncLits(fi.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			return false // deferred Unlock releases at exit: stays held
		case *ast.CallExpr:
			key, op, ok := mutexOp(p, st)
			if !ok {
				return true
			}
			switch op {
			case "Lock", "RLock":
				for _, h := range held {
					if h != key {
						sites = append(sites, lockSite{
							pair: lockPair{first: h, second: key},
							pos:  p.Fset.Position(st.Pos()),
						})
					}
				}
				held = append(held, key)
			case "Unlock", "RUnlock":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == key {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
		}
		return true
	})
	return sites
}

// mutexOp classifies call as a Lock/Unlock-family method on a
// sync.Mutex or sync.RWMutex and returns the lock's structural key.
func mutexOp(p *Pass, call *ast.CallExpr) (key, op string, ok bool) {
	m, recv, isMethod := p.MethodCall(call)
	if !isMethod {
		return "", "", false
	}
	switch m.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if !isMutexType(recv) {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	key, ok = lockKey(p, sel.X)
	return key, m.Name(), ok
}

// isMutexType reports whether t is sync.Mutex / sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t interface{ String() string }) bool {
	s := strings.TrimPrefix(t.String(), "*")
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// lockKey renders the structural identity of the locked expression:
// "Type.field" for field accesses, "pkgvar name" for identifiers.
// Expressions it cannot name (map lookups, function results) return
// ok=false and are not tracked.
func lockKey(p *Pass, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		t := p.TypeOf(x.X)
		if t == nil {
			return "", false
		}
		return typeShortName(t) + "." + x.Sel.Name, true
	}
	return "", false
}

// typeShortName trims package paths and pointers off a type's name.
func typeShortName(t interface{ String() string }) string {
	s := strings.TrimPrefix(t.String(), "*")
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerMapOrder flags map iteration whose per-element effects land
// in an ordered sink — a slice built outside the loop, a writer, a
// printer, or an encoder. Go randomizes map iteration order on purpose,
// so such loops produce run-to-run different output: the exact failure
// mode the training engine's byte-identical guarantee (and every CSV /
// report / Prometheus emitter in this repo) must exclude.
//
// The one sanctioned pattern is collect-then-sort: append only the keys
// to a slice and sort it before use. The analyzer recognizes that idiom
// — an appended-to slice that is later passed to package sort or
// slices, or has a Sort method called on it — and stays quiet.
var AnalyzerMapOrder = &Analyzer{
	Name:     "maporder",
	Severity: SeverityError,
	Doc: "Forbids map iteration that feeds an ordered sink (slice append, writer, " +
		"printer, encoder) unless the collected slice is subsequently sorted. " +
		"Map order is randomized; ordered output must come from sorted keys.",
	RunFile: func(p *Pass, f *ast.File) {
		for _, body := range funcBodies(f) {
			checkMapOrderBody(p, body)
		}
	},
}

func checkMapOrderBody(p *Pass, body *ast.BlockStmt) {
	inspectSkippingNestedFuncs(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(p, body, rng)
		return true // nested ranges inside this one are checked on their own visit
	})
}

// checkMapRange reports order-sensitive sinks inside one map-range
// body. funcBody is the innermost enclosing function body, used to
// look for a later sort of any slice the loop builds.
func checkMapRange(p *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	reported := false
	report := func(pos ast.Node, what string) {
		if reported {
			return // one finding per loop keeps the sweep reviewable
		}
		reported = true
		p.Report(rng.Pos(),
			"map iteration order feeds "+what+"; iteration order is randomized per run",
			"collect the keys into a slice, sort it, and range over the sorted keys")
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append(outer, ...) — building an ordered slice from unordered
		// iteration. Allowed when the slice is sorted afterwards.
		if isBuiltinCall(p, call, "append") {
			if obj := appendTargetOutside(p, call, rng); obj != nil && !sortedLater(p, funcBody, obj) {
				report(call, "a slice built outside the loop (append without a later sort)")
			}
			return true
		}
		// Writers, printers, encoders: bytes hit the sink in iteration
		// order immediately, so no later pass can fix it.
		if name, sinky := orderSensitiveCall(p, call); sinky {
			report(call, name)
		}
		return true
	})
}

// appendTargetOutside resolves append's destination to a variable
// declared outside the range statement, or nil.
func appendTargetOutside(p *Pass, call *ast.CallExpr, rng *ast.RangeStmt) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil // loop-local scratch; it dies with the iteration
	}
	return obj
}

// sortedLater reports whether funcBody contains a sort of obj: a call
// to package sort or slices with obj as an argument, or obj.Sort().
func sortedLater(p *Pass, funcBody *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		argMatches := func() bool {
			for _, a := range call.Args {
				if id, isIdent := ast.Unparen(a).(*ast.Ident); isIdent && p.Info.Uses[id] == obj {
					return true
				}
			}
			return false
		}
		if pkgPath, _, isPkgFn := p.PkgFunc(call); isPkgFn && (pkgPath == "sort" || pkgPath == "slices") {
			if argMatches() {
				found = true
				return false
			}
		}
		if m, _, isMethod := p.MethodCall(call); isMethod && m.Name() == "Sort" {
			if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
				if id, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent && p.Info.Uses[id] == obj {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// orderSensitiveCall classifies calls that emit bytes or elements in
// call order: Write*/Print*/Encode* methods, fmt printers, and the
// print builtins.
func orderSensitiveCall(p *Pass, call *ast.CallExpr) (string, bool) {
	if m, _, ok := p.MethodCall(call); ok {
		name := m.Name()
		switch {
		case hasAnyPrefix(name, "Write", "Print", "Encode", "Fprint"):
			return "a " + name + " sink", true
		}
		return "", false
	}
	if pkgPath, name, ok := p.PkgFunc(call); ok {
		if pkgPath == "fmt" && hasAnyPrefix(name, "Print", "Fprint", "Append") {
			return "fmt." + name, true
		}
		return "", false
	}
	if isBuiltinCall(p, call, "print") || isBuiltinCall(p, call, "println") {
		return "a print builtin", true
	}
	return "", false
}

// isBuiltinCall reports whether call invokes the named Go builtin (as
// opposed to a user-defined function that shadows the name).
func isBuiltinCall(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func hasAnyPrefix(s string, prefixes ...string) bool {
	for _, pre := range prefixes {
		if len(s) >= len(pre) && s[:len(pre)] == pre {
			return true
		}
	}
	return false
}

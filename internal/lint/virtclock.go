package lint

import (
	"go/ast"
)

// wallClockFuncs are the package-level functions of "time" that read or
// wait on the wall clock. Pure constructors and formatters (time.Date,
// time.Duration arithmetic, time.Unix) are fine: they do not observe
// the host's clock.
var wallClockFuncs = map[string]string{
	"Now":       "read",
	"Since":     "read",
	"Until":     "read",
	"Sleep":     "wait on",
	"After":     "wait on",
	"Tick":      "wait on",
	"NewTimer":  "wait on",
	"NewTicker": "wait on",
	"AfterFunc": "wait on",
}

// AnalyzerVirtClock enforces the discrete-event-simulation invariant:
// simulation code must take time from the virtual clock (simnet.Sim's
// event loop), never the host's wall clock. A single time.Now in a
// simulated path silently couples results to host speed and scheduling,
// which is exactly the nondeterminism the paper's controlled testbed —
// and this reproduction's determinism suites — exist to rule out.
//
// The check flags every call to a wall-clock function of package time.
// Real-time components opt out per directory (.vqlint.json relaxes
// cmd/ and examples/) or per call site with a reasoned //lint:ignore
// (internal/trace's wall-clock epoch, internal/serve's queue timing).
var AnalyzerVirtClock = &Analyzer{
	Name:     "virtclock",
	Severity: SeverityError,
	Doc: "Forbids wall-clock reads and waits (time.Now, time.Since, time.Sleep, " +
		"time.After, timers, tickers) so simulation code is driven exclusively by " +
		"the discrete-event virtual clock. Relax per directory for real-time " +
		"components, or per call site with //lint:ignore and a reason.",
	RunFile: func(p *Pass, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := p.PkgFunc(call)
			if !ok || pkgPath != "time" {
				return true
			}
			verb, banned := wallClockFuncs[name]
			if !banned {
				return true
			}
			p.Report(call.Pos(),
				"time."+name+" would "+verb+" the wall clock; simulation time must come from the virtual event clock",
				"thread the event clock (e.g. simnet.Sim.Now or the component's clock func) instead of package time")
			return true
		})
	},
}

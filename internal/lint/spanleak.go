package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerSpanLeak enforces the tracing contract from
// docs/OBSERVABILITY.md: every span handed out by a Start* method must
// be ended. An unended span simply never appears in the export — the
// timeline silently loses exactly the interval someone was trying to
// observe, which is the worst kind of observability bug because nothing
// fails.
//
// The check is structural, not a full all-paths dataflow: a started
// span must either (a) have End/EndDetail called on it somewhere in the
// same function, or (b) escape the function (stored in a field or
// variable visible outside, passed along, returned), in which case the
// receiver owns the obligation. Discarding the result of a Start* call
// — as an expression statement or into the blank identifier — is always
// a leak.
var AnalyzerSpanLeak = &Analyzer{
	Name:     "spanleak",
	Severity: SeverityError,
	Doc: "Requires every span returned by a Start* method (a result type with an " +
		"End method) to be ended in the starting function or to escape it; " +
		"discarded Start* results are reported unconditionally.",
	RunFile: func(p *Pass, f *ast.File) {
		for _, body := range funcBodies(f) {
			checkSpanLeakBody(p, body)
		}
	},
}

// isSpanStart reports whether call invokes a Start*-named function or
// method whose single result type carries an End method.
func isSpanStart(p *Pass, call *ast.CallExpr) bool {
	var name string
	if m, _, ok := p.MethodCall(call); ok {
		name = m.Name()
	} else if _, fn, ok := p.PkgFunc(call); ok {
		name = fn
	} else {
		return false
	}
	if !hasAnyPrefix(name, "Start") {
		return false
	}
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	if _, isTuple := t.(*types.Tuple); isTuple {
		return false // multi-result Start funcs are not span constructors
	}
	return HasMethod(t, "End")
}

func checkSpanLeakBody(p *Pass, body *ast.BlockStmt) {
	inspectSkippingNestedFuncs(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok && isSpanStart(p, call) {
				p.Report(call.Pos(),
					"span started and immediately discarded; it will never be recorded",
					"assign the span and call End (or defer span.End()) when the interval closes")
			}
		case *ast.AssignStmt:
			checkSpanAssign(p, body, stmt)
		}
		return true
	})
}

func checkSpanAssign(p *Pass, body *ast.BlockStmt, assign *ast.AssignStmt) {
	// Only the aligned form x := Start() / x = Start() matters; a span
	// in a multi-value context came from a function the analyzer
	// already vetted at its own return site.
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isSpanStart(p, call) {
			continue
		}
		switch lhs := assign.Lhs[i].(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				p.Report(call.Pos(),
					"span started into the blank identifier; it will never be recorded",
					"keep the span and call End when the interval closes")
				continue
			}
			obj := p.Info.Defs[lhs]
			if obj == nil {
				obj = p.Info.Uses[lhs]
			}
			if obj == nil {
				continue
			}
			if !spanEndedOrEscapes(p, body, obj, lhs) {
				p.Reportf(call.Pos(),
					"span %s is never ended and never escapes this function; the interval will be lost",
					lhs.Name)
			}
		default:
			// Assignment into a field or element: the span escapes into
			// a structure whose owner is responsible for ending it.
		}
	}
}

// spanEndedOrEscapes scans the function body for either an
// End/EndDetail call on obj or any use that lets obj outlive the
// function's span-tracking (argument, return, composite literal,
// further assignment, address-taken, channel send).
func spanEndedOrEscapes(p *Pass, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	ok := false
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		if ok {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent || id == def || p.Info.Uses[id] != obj {
			return true
		}
		parent := stack[len(stack)-1]
		switch pn := parent.(type) {
		case *ast.SelectorExpr:
			// span.End() / span.EndDetail(...) discharges the
			// obligation; any other method call (span.ID()) does not.
			if pn.Sel.Name == "End" || pn.Sel.Name == "EndDetail" {
				ok = true
			}
		case *ast.CallExpr:
			for _, a := range pn.Args {
				if a == n {
					ok = true // passed along: callee takes ownership
				}
			}
		case *ast.AssignStmt:
			for _, r := range pn.Rhs {
				if r == n {
					ok = true // reassigned somewhere with its own tracking
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr:
			ok = true
		case *ast.UnaryExpr:
			ok = pn.Op.String() == "&"
		}
		return true
	})
	return ok
}

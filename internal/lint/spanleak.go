package lint

import (
	"go/ast"
	"go/types"

	"vqprobe/internal/lint/cfg"
)

// AnalyzerSpanLeak enforces the tracing contract from
// docs/OBSERVABILITY.md: every span handed out by a Start* method must
// be ended. An unended span simply never appears in the export — the
// timeline silently loses exactly the interval someone was trying to
// observe, which is the worst kind of observability bug because nothing
// fails.
//
// v2 is an all-paths CFG analysis: from the Start* call, every path to
// a normal function exit must pass a discharging use of the span — an
// End/EndDetail call (deferred or direct; a defer discharges exactly
// the paths that execute it), or an escape that transfers ownership
// (passed as an argument, returned, stored into a structure, captured
// by a closure, reassigned, address taken, sent on a channel). A path
// that ends in panic or a terminal call (os.Exit, log.Fatal) carries no
// obligation. Discarding the result of a Start* call — as an expression
// statement or into the blank identifier — is always a leak.
var AnalyzerSpanLeak = &Analyzer{
	Name:     "spanleak",
	Severity: SeverityError,
	Doc: "All-paths analysis over the function CFG: every span returned by a Start* " +
		"method (a result type with an End method) must be ended or escape on every " +
		"path to a normal return; paths that panic or call os.Exit are exempt. " +
		"Discarded Start* results are reported unconditionally.",
	Run: func(p *Pass) {
		for _, fi := range p.Functions() {
			checkSpanLeakFunc(p, fi)
		}
	},
}

// isSpanStart reports whether call invokes a Start*-named function or
// method whose single result type carries an End method.
func isSpanStart(p *Pass, call *ast.CallExpr) bool {
	var name string
	if m, _, ok := p.MethodCall(call); ok {
		name = m.Name()
	} else if _, fn, ok := p.PkgFunc(call); ok {
		name = fn
	} else {
		return false
	}
	if !hasAnyPrefix(name, "Start") {
		return false
	}
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	if _, isTuple := t.(*types.Tuple); isTuple {
		return false // multi-result Start funcs are not span constructors
	}
	return HasMethod(t, "End")
}

// checkSpanLeakFunc scans one function's CFG for span starts and runs
// the all-paths obligation check on each.
func checkSpanLeakFunc(p *Pass, fi *FuncInfo) {
	g := p.FuncGraph(fi)
	for _, blk := range g.Blocks {
		for idx, n := range blk.Nodes {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok && isSpanStart(p, call) {
					p.Report(call.Pos(),
						"span started and immediately discarded; it will never be recorded",
						"assign the span and call End (or defer span.End()) when the interval closes")
				}
			case *ast.AssignStmt:
				checkSpanAssign(p, g, blk, idx, stmt)
			}
		}
	}
}

func checkSpanAssign(p *Pass, g *cfg.Graph, blk *cfg.Block, idx int, assign *ast.AssignStmt) {
	// Only the aligned form x := Start() / x = Start() matters; a span
	// in a multi-value context came from a function the analyzer
	// already vetted at its own return site.
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isSpanStart(p, call) {
			continue
		}
		switch lhs := assign.Lhs[i].(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				p.Report(call.Pos(),
					"span started into the blank identifier; it will never be recorded",
					"keep the span and call End when the interval closes")
				continue
			}
			obj := p.Info.Defs[lhs]
			if obj == nil {
				obj = p.Info.Uses[lhs]
			}
			if obj == nil {
				continue
			}
			if leakPath(g, blk, idx+1, func(n ast.Node) bool {
				return dischargesSpan(p, n, obj, lhs)
			}) {
				p.Reportf(call.Pos(),
					"span %s is not ended on every path: some path reaches return without End and without the span escaping",
					lhs.Name)
			}
		default:
			// Assignment into a field or element: the span escapes into
			// a structure whose owner is responsible for ending it.
		}
	}
}

// leakPath reports whether some path from node startIdx of start
// reaches the graph's Exit without passing a node for which discharges
// returns true. Blocks with no successors that are not Exit terminate
// abnormally and carry no obligation.
func leakPath(g *cfg.Graph, start *cfg.Block, startIdx int, discharges func(ast.Node) bool) bool {
	visited := make(map[*cfg.Block]bool)
	var walk func(blk *cfg.Block, idx int) bool
	walk = func(blk *cfg.Block, idx int) bool {
		for i := idx; i < len(blk.Nodes); i++ {
			if discharges(blk.Nodes[i]) {
				return false // this path is clean
			}
		}
		if blk == g.Exit {
			return true // reached a normal return undischarged
		}
		for _, s := range blk.Succs {
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	return walk(start, startIdx)
}

// dischargesSpan reports whether node n discharges the span obligation
// for obj: an End/EndDetail call on it, or a use that transfers
// ownership out of this function's tracking. Unlike statement
// attribution, this deliberately descends into function literals — a
// `defer func() { span.End() }()` closure discharges the span, and any
// capture hands the obligation to the closure.
func dischargesSpan(p *Pass, n ast.Node, obj types.Object, def *ast.Ident) bool {
	found := false
	for _, h := range cfg.HeaderNodes(n) {
		inspectWithStack(h, func(m ast.Node, stack []ast.Node) bool {
			if found {
				return false
			}
			if _, isLit := m.(*ast.FuncLit); isLit {
				// Captured by a closure: if the closure mentions obj at
				// all, ownership moved (the closure's own body is checked
				// as its own function).
				if usesObject(p, m, obj, def) {
					found = true
				}
				return false
			}
			id, isIdent := m.(*ast.Ident)
			if !isIdent || id == def || p.Info.Uses[id] != obj {
				return true
			}
			if len(stack) == 0 {
				return true
			}
			parent := stack[len(stack)-1]
			switch pn := parent.(type) {
			case *ast.SelectorExpr:
				// span.End() / span.EndDetail(...) discharges the
				// obligation; any other method call (span.ID()) does not.
				if pn.Sel.Name == "End" || pn.Sel.Name == "EndDetail" {
					found = true
				}
			case *ast.CallExpr:
				for _, a := range pn.Args {
					if a == m {
						found = true // passed along: callee takes ownership
					}
				}
			case *ast.AssignStmt:
				for _, r := range pn.Rhs {
					if r == m {
						found = true // reassigned somewhere with its own tracking
					}
				}
			case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr:
				found = true
			case *ast.UnaryExpr:
				found = pn.Op.String() == "&"
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// usesObject reports whether obj is referenced anywhere under n.
func usesObject(p *Pass, n ast.Node, obj types.Object, def *ast.Ident) bool {
	used := false
	ast.Inspect(n, func(m ast.Node) bool {
		if used {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && id != def && p.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

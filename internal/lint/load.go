package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"vqprobe/internal/lint/cfg"
)

// Package is one parsed and type-checked (non-test) package of the
// module under analysis.
type Package struct {
	Dir    string // absolute directory
	RelDir string // module-relative directory, "" for the root
	Path   string // import path
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info

	// TypeErrors holds type-checker complaints. The engine analyzes
	// what it can anyway — the repo is expected to compile, so any
	// entry here usually means a loader limitation worth surfacing
	// rather than hiding.
	TypeErrors []error

	// Per-package caches filled lazily by the runner. A package is
	// analyzed by one goroutine at a time, so these are unguarded.
	directives     map[string][]ignoreDirective
	directiveDiags []Diagnostic
	summary        *PackageSummary
	cfgCache       map[*ast.BlockStmt]*cfg.Graph
}

// Loader parses and type-checks packages using only the standard
// library: go/parser for syntax and go/types with the source importer
// ("go/importer" compiling dependencies from source) for types. One
// Loader shares a FileSet and an importer cache across packages, so
// stdlib dependencies are compiled once per process.
type Loader struct {
	Fset *token.FileSet

	imp  types.ImporterFrom
	impM sync.Mutex // the source importer is not safe for concurrent use
}

// NewLoader returns a Loader with a fresh FileSet and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Import implements types.Importer by locking around the shared source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l.impM.Lock()
	defer l.impM.Unlock()
	return l.imp.ImportFrom(path, dir, mode)
}

// ModuleRoot walks up from dir to the nearest go.mod and returns its
// directory and the declared module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, readErr := os.ReadFile(filepath.Join(d, "go.mod"))
		if readErr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, found := strings.CutPrefix(line, "module "); found {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// ListPackageDirs walks the module rooted at root and returns every
// directory containing at least one non-test .go file, skipping
// testdata, vendor, and hidden directories. Results are sorted and
// module-root-relative ("" denotes the root itself).
func ListPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "node_modules") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && isLintedGoFile(e.Name()) {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				if rel == "." {
					rel = ""
				}
				dirs = append(dirs, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func isLintedGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// LoadDir parses and type-checks the non-test package in dir (absolute
// path), assigning it importPath. relDir is recorded on the result for
// per-directory configuration.
func (l *Loader) LoadDir(dir, relDir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isLintedGoFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg := &Package{Dir: dir, RelDir: relDir, Path: importPath, Fset: l.Fset, Files: files, Info: info}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the package even on errors; partial type info is
	// still useful to the analyzers.
	pkg.Pkg, _ = conf.Check(importPath, l.Fset, files, info)
	return pkg, nil
}

// LoadModule loads every package of the module rooted at root. dirs
// restricts loading to the given module-relative directories; nil means
// all of them.
func (l *Loader) LoadModule(root string, dirs []string) ([]*Package, error) {
	_, modPath, err := ModuleRoot(root)
	if err != nil {
		return nil, err
	}
	if dirs == nil {
		dirs, err = ListPackageDirs(root)
		if err != nil {
			return nil, err
		}
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, rel := range dirs {
		dir := root
		importPath := modPath
		if rel != "" {
			dir = filepath.Join(root, filepath.FromSlash(rel))
			importPath = modPath + "/" + rel
		}
		p, err := l.LoadDir(dir, rel, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"vqprobe/internal/lint/cfg"
)

// FuncInfo identifies one function body in a package: a declared
// function or method (Decl set) or a function literal (Lit set). The
// dataflow analyzers iterate these instead of re-walking files, so each
// statement is attributed to exactly one function.
type FuncInfo struct {
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Body *ast.BlockStmt
}

// Pos returns the function's position anchor.
func (fi *FuncInfo) Pos() ast.Node {
	if fi.Decl != nil {
		return fi.Decl
	}
	return fi.Lit
}

// Functions enumerates every function declaration and literal in the
// package, in file and position order.
func (p *Pass) Functions() []*FuncInfo {
	var out []*FuncInfo
	for _, f := range p.Files {
		out = append(out, fileFunctions(f)...)
	}
	return out
}

func fileFunctions(f *ast.File) []*FuncInfo {
	var out []*FuncInfo
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, &FuncInfo{Decl: fn, Body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, &FuncInfo{Lit: fn, Body: fn.Body})
		}
		return true
	})
	return out
}

// FuncGraph builds (and caches per package) the control-flow graph of
// one function body. Terminal calls — panic is built in; os.Exit,
// runtime.Goexit, log.Fatal* and Fatal*-named methods are resolved
// through type info — end their block without reaching Exit, so
// all-paths analyses do not demand cleanup on crash paths.
func (p *Pass) FuncGraph(fi *FuncInfo) *cfg.Graph {
	if p.pkg != nil {
		if g, ok := p.pkg.cfgCache[fi.Body]; ok {
			return g
		}
	}
	g := cfg.New(fi.Body, cfg.Options{IsTerminal: p.isTerminalCall})
	if p.pkg != nil {
		if p.pkg.cfgCache == nil {
			p.pkg.cfgCache = map[*ast.BlockStmt]*cfg.Graph{}
		}
		p.pkg.cfgCache[fi.Body] = g
	}
	return g
}

// isTerminalCall reports whether call never returns.
func (p *Pass) isTerminalCall(call *ast.CallExpr) bool {
	if pkgPath, name, ok := p.PkgFunc(call); ok {
		switch {
		case pkgPath == "os" && name == "Exit":
			return true
		case pkgPath == "runtime" && name == "Goexit":
			return true
		case pkgPath == "log" && hasAnyPrefix(name, "Fatal", "Panic"):
			return true
		}
		return false
	}
	if m, _, ok := p.MethodCall(call); ok {
		// testing.T-style sinks: Fatal, Fatalf, FailNow, Skip...
		return hasAnyPrefix(m.Name(), "Fatal") || m.Name() == "FailNow"
	}
	return false
}

// FuncSymbol renders the module-unique symbol of a function object:
// "pkg/path.Name" for package-level functions, "pkg/path.Recv.Name"
// for methods (pointer receivers normalized away). Empty for builtins.
func FuncSymbol(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return pkg.Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		return fmt.Sprintf("%s.(%s).%s", pkg.Path(), t.String(), fn.Name())
	}
	return pkg.Path() + "." + fn.Name()
}

// DeclSymbol resolves a function declaration to its symbol, or "".
func (p *Pass) DeclSymbol(decl *ast.FuncDecl) string {
	return declSymbolOf(p.Info, decl)
}

func declSymbolOf(info *types.Info, decl *ast.FuncDecl) string {
	if info == nil {
		return ""
	}
	fn, ok := info.Defs[decl.Name].(*types.Func)
	if !ok {
		return ""
	}
	return FuncSymbol(fn)
}

// CalleeSymbol resolves a call to the symbol of its static callee:
// package-level functions and methods with a concrete receiver type.
// Calls through function values, interface dispatch that go/types does
// not devirtualize, and conversions return ok=false.
func (p *Pass) CalleeSymbol(call *ast.CallExpr) (string, bool) {
	return calleeSymbolOf(p.Info, call)
}

func calleeSymbolOf(info *types.Info, call *ast.CallExpr) (string, bool) {
	if m, _, ok := methodCallOf(info, call); ok {
		if sym := FuncSymbol(m); sym != "" {
			return sym, true
		}
		return "", false
	}
	if info == nil {
		return "", false
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return "", false
	}
	if sym := FuncSymbol(fn); sym != "" {
		return sym, true
	}
	return "", false
}

// inspectSkipFuncLits walks n, invoking fn on every node but not
// descending into function literal bodies (those are separate
// FuncInfos).
func inspectSkipFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit && m != n {
			return false
		}
		if m == nil {
			return true
		}
		return fn(m)
	})
}

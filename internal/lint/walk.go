package lint

import (
	"go/ast"
)

// inspectWithStack walks root like ast.Inspect but hands fn the stack
// of ancestor nodes (outermost first, not including n itself). fn's
// return value controls descent exactly as in ast.Inspect.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// funcBodies returns the body of every function declaration and literal
// in f, innermost bodies excluded from their parents' entries — i.e.
// each returned body should be scanned with skipNestedFuncs to attribute
// statements to exactly one function.
func funcBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				bodies = append(bodies, fn.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, fn.Body)
		}
		return true
	})
	return bodies
}

// inspectSkippingNestedFuncs walks body but does not descend into
// nested function literals, so statement-level analyses attribute each
// node to exactly one function body (funcBodies already lists the
// nested literals separately).
func inspectSkippingNestedFuncs(body *ast.BlockStmt, fn func(ast.Node) bool) {
	first := true
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if first {
			first = false
			return fn(n)
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return fn(n)
	})
}

package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Format identifies an output renderer for diagnostics.
type Format string

const (
	// FormatText is the human-readable default: one
	// `file:line:col: check: message` line per finding, with the
	// suggested fix indented beneath.
	FormatText Format = "text"
	// FormatJSON emits a single JSON array of diagnostic objects,
	// suppressed findings included (flagged), for tooling and audits.
	FormatJSON Format = "json"
	// FormatGitHub emits ::error / ::warning workflow commands so
	// findings render as inline pull-request annotations.
	FormatGitHub Format = "github"
)

// ParseFormat validates a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatText, FormatJSON, FormatGitHub:
		return Format(s), nil
	}
	return "", fmt.Errorf("lint: unknown format %q (want text, json, or github)", s)
}

// jsonDiagnostic is the stable wire shape of one finding.
type jsonDiagnostic struct {
	Check          string `json:"check"`
	Severity       string `json:"severity"`
	File           string `json:"file"`
	Line           int    `json:"line"`
	Column         int    `json:"column"`
	Message        string `json:"message"`
	Fix            string `json:"fix,omitempty"`
	Fixable        bool   `json:"fixable,omitempty"`
	Suppressed     bool   `json:"suppressed,omitempty"`
	SuppressReason string `json:"suppressReason,omitempty"`
}

// WriteDiagnostics renders diags to w in the given format. baseDir,
// when non-empty, is stripped from file paths so output is
// module-relative (and therefore stable across checkouts). Text and
// GitHub formats omit suppressed findings; JSON keeps them so the
// suppression audit trail is machine-readable.
func WriteDiagnostics(w io.Writer, diags []Diagnostic, format Format, baseDir string) error {
	relPath := func(name string) string {
		if baseDir == "" {
			return name
		}
		if rel, err := filepath.Rel(baseDir, name); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
		return name
	}

	switch format {
	case FormatJSON:
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Check:          d.Check,
				Severity:       d.Severity.String(),
				File:           relPath(d.Pos.Filename),
				Line:           d.Pos.Line,
				Column:         d.Pos.Column,
				Message:        d.Message,
				Fix:            d.Fix,
				Fixable:        len(d.Edits) > 0,
				Suppressed:     d.Suppressed,
				SuppressReason: d.SuppressReason,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)

	case FormatGitHub:
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			// GitHub workflow commands strip newlines; %0A is the
			// documented escape.
			msg := fmt.Sprintf("[%s] %s", d.Check, d.Message)
			if d.Fix != "" {
				msg += "%0Asuggested: " + d.Fix
			}
			if _, err := fmt.Fprintf(w, "::%s file=%s,line=%d,col=%d,title=vqlint %s::%s\n",
				d.Severity, relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, msg); err != nil {
				return err
			}
		}
		return nil

	default: // FormatText
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n",
				relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message); err != nil {
				return err
			}
			if d.Fix != "" {
				if _, err := fmt.Fprintf(w, "\tsuggested: %s\n", d.Fix); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// Unsuppressed counts findings that are not covered by a directive —
// the number that should gate an exit code or a CI job.
func Unsuppressed(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if !d.Suppressed {
			n++
		}
	}
	return n
}

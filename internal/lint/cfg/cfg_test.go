package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"vqprobe/internal/lint/cfg"
)

// build parses src as the body of a function and returns its graph.
// src is the body only, without braces.
func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[len(f.Decls)-1].(*ast.FuncDecl)
	return cfg.New(fn.Body, cfg.Options{
		IsTerminal: func(call *ast.CallExpr) bool {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				return sel.Sel.Name == "Exit" || strings.HasPrefix(sel.Sel.Name, "Fatal")
			}
			return false
		},
	})
}

// exitReachable reports whether Exit is reachable from Entry.
func exitReachable(g *cfg.Graph) bool {
	seen := map[*cfg.Block]bool{}
	var walk func(*cfg.Block) bool
	walk = func(b *cfg.Block) bool {
		if b == g.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(g.Entry)
}

// hasNode reports whether any reachable block contains a node for which
// pred holds.
func hasNode(g *cfg.Graph, pred func(ast.Node) bool) bool {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if pred(n) {
				return true
			}
		}
	}
	return false
}

func TestStraightLineReachesExit(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	if !exitReachable(g) {
		t.Fatal("straight-line body must reach Exit")
	}
}

func TestReturnConnectsToExit(t *testing.T) {
	g := build(t, "if true {\nreturn\n}\nreturn")
	if !exitReachable(g) {
		t.Fatal("return must reach Exit")
	}
}

func TestInfiniteLoopNeverReachesExit(t *testing.T) {
	g := build(t, "for {\n_ = 1\n}")
	if exitReachable(g) {
		t.Fatal("for{} without break must not reach Exit")
	}
}

func TestLoopBreakReachesExit(t *testing.T) {
	g := build(t, "for {\nif true {\nbreak\n}\n}")
	if !exitReachable(g) {
		t.Fatal("break must connect the loop to its join")
	}
}

func TestCondLoopFallsThrough(t *testing.T) {
	g := build(t, "for i := 0; i < 3; i++ {\n_ = i\n}")
	if !exitReachable(g) {
		t.Fatal("conditional for must fall through when the condition fails")
	}
}

func TestPanicDoesNotReachExit(t *testing.T) {
	g := build(t, `panic("boom")`)
	if exitReachable(g) {
		t.Fatal("a body ending in panic must not reach Exit")
	}
}

func TestTerminalCallDoesNotReachExit(t *testing.T) {
	g := build(t, "os.Exit(1)")
	if exitReachable(g) {
		t.Fatal("a terminal call must not reach Exit")
	}
}

func TestPanicInOneBranchOnly(t *testing.T) {
	g := build(t, "if true {\npanic(\"boom\")\n}\n_ = 1")
	if !exitReachable(g) {
		t.Fatal("the non-panicking branch must still reach Exit")
	}
}

func TestSwitchWithoutDefaultHasSkipEdge(t *testing.T) {
	// Every case returns, but without a default the tag may match
	// nothing and fall through to Exit.
	g := build(t, "switch 1 {\ncase 1:\nreturn\ncase 2:\nreturn\n}\n")
	if !exitReachable(g) {
		t.Fatal("switch without default must keep the no-match edge")
	}
}

func TestSelectWithoutDefaultBlocks(t *testing.T) {
	g := build(t, "ch := make(chan int)\nselect {\ncase <-ch:\nfor {\n}\n}")
	if exitReachable(g) {
		t.Fatal("select's only case loops forever; Exit must be unreachable")
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, "outer:\nfor {\nfor {\nbreak outer\n}\n}")
	if !exitReachable(g) {
		t.Fatal("break outer must connect to the outer loop's join")
	}
}

func TestLabeledContinueStaysInLoop(t *testing.T) {
	g := build(t, "outer:\nfor {\nfor {\ncontinue outer\n}\n}")
	if exitReachable(g) {
		t.Fatal("continue outer never leaves the outer loop")
	}
}

func TestGotoForward(t *testing.T) {
	g := build(t, "goto done\nfor {\n}\ndone:\n_ = 1")
	if !exitReachable(g) {
		t.Fatal("forward goto must skip the infinite loop")
	}
}

func TestRangeHeaderElement(t *testing.T) {
	g := build(t, "xs := []int{1}\nfor _, v := range xs {\n_ = v\n}")
	if !hasNode(g, func(n ast.Node) bool { _, ok := n.(*ast.RangeStmt); return ok }) {
		t.Fatal("range header must appear as a block element")
	}
	if !exitReachable(g) {
		t.Fatal("range loop must fall through on exhaustion")
	}
}

func TestFallthroughConnectsClauses(t *testing.T) {
	// Second clause loops forever: reachable only via fallthrough. Exit
	// stays reachable through the no-match edge, but the fallthrough
	// edge must put the infinite loop downstream of case 1.
	g := build(t, "switch 1 {\ncase 1:\nfallthrough\ncase 2:\n_ = 2\n}")
	if !exitReachable(g) {
		t.Fatal("fallthrough chain must still reach Exit")
	}
}

func TestHeaderNodesOfRange(t *testing.T) {
	src := "package p\nfunc f(xs []int) {\nfor i, v := range xs {\n_, _ = i, v\n}\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	rng := fn.Body.List[0].(*ast.RangeStmt)
	nodes := cfg.HeaderNodes(rng)
	if len(nodes) != 3 {
		t.Fatalf("HeaderNodes(range) = %d nodes, want X, Key, Value", len(nodes))
	}
	if nodes[0] != rng.X {
		t.Error("first header node must be the ranged operand")
	}
}

func TestNilBody(t *testing.T) {
	g := cfg.New(nil, cfg.Options{})
	if !exitReachable(g) {
		t.Fatal("nil body graph must connect Entry to Exit")
	}
}

// Package cfg builds per-function control-flow graphs for the lint
// engine's dataflow analyzers. The graph is intentionally small: basic
// blocks hold the statements and header expressions that execute
// straight-line, edges follow Go's structured control flow (if, for,
// range, switch, select, labeled break/continue, goto), and a single
// synthetic Exit block collects every normal function exit (explicit
// returns and falling off the end of the body).
//
// Two properties matter to the analyzers built on top:
//
//   - all-paths questions ("is this span ended on every path to
//     return?") are answered by graph reachability from a definition
//     point to Exit, so a block that terminates by panicking — or by a
//     caller-supplied terminal call such as os.Exit or log.Fatal — is
//     deliberately NOT connected to Exit;
//   - forward dataflow ("which values are wall-clock-derived here?")
//     walks Block.Nodes in order, so header expressions (an if
//     condition, a range operand) appear in the block that evaluates
//     them, not inside the branch they guard.
//
// Block.Nodes elements are leaf statements and expressions: they
// contain no nested statements except function literals, which start
// their own graphs. The one exception is *ast.RangeStmt, which appears
// as its own loop-header element so analyzers can model the per-
// iteration Key/Value assignment; use HeaderNodes to scan an element
// without descending into controlled bodies.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: Nodes execute in order, then control moves
// to one of Succs. A block with no successors that is not the graph's
// Exit terminates abnormally (panic or a terminal call).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // synthetic; every normal return reaches it
	Blocks []*Block
}

// Options customizes graph construction.
type Options struct {
	// IsTerminal reports whether a call never returns (os.Exit,
	// log.Fatal, runtime.Goexit, testing.T.Fatal...). The builtin panic
	// is always treated as terminal. May be nil.
	IsTerminal func(*ast.CallExpr) bool
}

// New builds the graph of body. A nil body yields a graph whose entry
// is its exit.
func New(body *ast.BlockStmt, opts Options) *Graph {
	b := &builder{opts: opts}
	b.graph = &Graph{}
	b.graph.Entry = b.newBlock()
	b.graph.Exit = b.newBlock()
	if body != nil {
		last := b.stmts(b.graph.Entry, body.List)
		b.edge(last, b.graph.Exit)
	} else {
		b.edge(b.graph.Entry, b.graph.Exit)
	}
	return b.graph
}

// HeaderNodes returns the sub-nodes of a Block element that execute in
// that block. For most elements that is the element itself; for a
// *ast.RangeStmt header it is the ranged operand plus the Key/Value
// expressions assigned each iteration (the loop body lives in its own
// blocks).
func HeaderNodes(n ast.Node) []ast.Node {
	if rng, ok := n.(*ast.RangeStmt); ok {
		out := []ast.Node{rng.X}
		if rng.Key != nil {
			out = append(out, rng.Key)
		}
		if rng.Value != nil {
			out = append(out, rng.Value)
		}
		return out
	}
	return []ast.Node{n}
}

// builder carries construction state.
type builder struct {
	graph *Graph
	opts  Options

	// control-flow targets for break/continue, innermost last.
	loops []loopFrame
	// labeled statements: label name -> frame for break/continue/goto.
	labels map[string]*labelFrame
	// pendingLabel is the label of the statement about to build, set by
	// LabeledStmt and consumed by the loop/switch constructs so
	// `break outer` resolves.
	pendingLabel string
}

type loopFrame struct {
	label          string
	breakT, contT  *Block
	isSwitchSelect bool // break applies, continue does not
}

type labelFrame struct {
	target *Block // goto target (start of the labeled statement)
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.graph.Blocks)}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

// edge connects from -> to unless from is nil (unreachable flow).
func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// stmts appends the statement list to cur and returns the block that
// control reaches after the list, or nil when the list never falls
// through (it returned, panicked, or branched away).
func (b *builder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

// add appends a leaf node to cur, tolerating unreachable positions.
func (b *builder) add(cur *Block, n ast.Node) *Block {
	if cur == nil {
		// Unreachable code still deserves analysis (a bug there is a
		// bug); park it in a fresh disconnected block.
		cur = b.newBlock()
	}
	if n != nil {
		cur.Nodes = append(cur.Nodes, n)
	}
	return cur
}

func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	// A label set by an enclosing LabeledStmt applies to this statement
	// only (break/continue labels are legal only on loops and
	// switch/select, which consume it below).
	label := b.takeLabel()
	switch st := s.(type) {
	case nil:
		return cur

	case *ast.BlockStmt:
		return b.stmts(cur, st.List)

	case *ast.ReturnStmt:
		cur = b.add(cur, st)
		b.edge(cur, b.graph.Exit)
		return nil

	case *ast.ExprStmt:
		cur = b.add(cur, st)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && b.terminal(call) {
			return nil // panic / os.Exit: no fall-through, no Exit edge
		}
		return cur

	case *ast.IfStmt:
		if st.Init != nil {
			cur = b.add(cur, st.Init)
		}
		cur = b.add(cur, st.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenEnd := b.stmts(thenB, st.Body.List)
		join := b.newBlock()
		b.edge(thenEnd, join)
		if st.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			elseEnd := b.stmt(elseB, st.Else)
			b.edge(elseEnd, join)
		} else {
			b.edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		if st.Init != nil {
			cur = b.add(cur, st.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if st.Cond != nil {
			head = b.add(head, st.Cond)
		}
		join := b.newBlock()
		post := b.newBlock()
		bodyB := b.newBlock()
		b.edge(head, bodyB)
		if st.Cond != nil {
			b.edge(head, join) // condition false
		}
		b.pushLoop(label, join, post)
		bodyEnd := b.stmts(bodyB, st.Body.List)
		b.popLoop()
		b.edge(bodyEnd, post)
		if st.Post != nil {
			post = b.add(post, st.Post)
		}
		b.edge(post, head)
		if len(join.Preds(b.graph)) == 0 {
			return nil // for {} with no break: nothing follows
		}
		return join

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(cur, head)
		head = b.add(head, st) // header element: X plus Key/Value binding
		join := b.newBlock()
		b.edge(head, join) // range may be empty / exhausted
		bodyB := b.newBlock()
		b.edge(head, bodyB)
		b.pushLoop(label, join, head)
		bodyEnd := b.stmts(bodyB, st.Body.List)
		b.popLoop()
		b.edge(bodyEnd, head)
		return join

	case *ast.SwitchStmt:
		if st.Init != nil {
			cur = b.add(cur, st.Init)
		}
		if st.Tag != nil {
			cur = b.add(cur, st.Tag)
		}
		return b.caseClauses(cur, label, st.Body.List, false)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			cur = b.add(cur, st.Init)
		}
		cur = b.add(cur, st.Assign)
		return b.caseClauses(cur, label, st.Body.List, false)

	case *ast.SelectStmt:
		return b.caseClauses(cur, label, st.Body.List, true)

	case *ast.LabeledStmt:
		// The labeled statement starts a fresh block so goto can target
		// it; reuse the block a forward goto already created.
		lf := b.label(st.Label.Name)
		b.edge(cur, lf.target)
		b.pendingLabel = st.Label.Name
		return b.stmt(lf.target, st.Stmt)

	case *ast.BranchStmt:
		cur = b.add(cur, st)
		switch st.Tok {
		case token.BREAK:
			b.edge(cur, b.breakTarget(labelName(st)))
		case token.CONTINUE:
			b.edge(cur, b.continueTarget(labelName(st)))
		case token.GOTO:
			if st.Label != nil {
				b.edge(cur, b.label(st.Label.Name).target)
			}
		case token.FALLTHROUGH:
			// handled by caseClauses via edge to next clause; the
			// statement itself carries no dataflow.
			return cur
		}
		return nil

	case *ast.DeferStmt, *ast.GoStmt, *ast.AssignStmt, *ast.DeclStmt,
		*ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		return b.add(cur, s)

	default:
		return b.add(cur, s)
	}
}

// takeLabel consumes the pending label set by an enclosing LabeledStmt.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// caseClauses builds switch/type-switch/select bodies. Each clause gets
// its own block; fallthrough connects a clause to the next one.
func (b *builder) caseClauses(cur *Block, label string, clauses []ast.Stmt, isSelect bool) *Block {
	join := b.newBlock()
	b.pushSwitch(label, join)
	defer b.popLoop()

	hasDefault := false
	clauseBodies := make([]*Block, len(clauses))
	var clauseStmts [][]ast.Stmt
	for i, c := range clauses {
		blk := b.newBlock()
		clauseBodies[i] = blk
		b.edge(cur, blk)
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			clauseStmts = append(clauseStmts, cc.Body)
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			clauseStmts = append(clauseStmts, cc.Body)
		default:
			clauseStmts = append(clauseStmts, nil)
		}
	}
	// A switch without default may match nothing; a select without
	// default blocks until one case fires (no skip edge).
	if !hasDefault && !isSelect {
		b.edge(cur, join)
	}
	for i := range clauses {
		end := b.stmts(clauseBodies[i], clauseStmts[i])
		if end != nil && endsInFallthrough(clauseStmts[i]) && i+1 < len(clauses) {
			b.edge(end, clauseBodies[i+1])
		} else {
			b.edge(end, join)
		}
	}
	if isSelect && len(clauses) == 0 {
		return nil // empty select blocks forever
	}
	return join
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) terminal(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return b.opts.IsTerminal != nil && b.opts.IsTerminal(call)
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.loops = append(b.loops, loopFrame{label: label, breakT: brk, contT: cont})
}

func (b *builder) pushSwitch(label string, brk *Block) {
	b.loops = append(b.loops, loopFrame{label: label, breakT: brk, isSwitchSelect: true})
}

func (b *builder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

func (b *builder) breakTarget(label string) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if label == "" || f.label == label {
			return f.breakT
		}
	}
	return nil
}

func (b *builder) continueTarget(label string) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if f.isSwitchSelect {
			continue
		}
		if label == "" || f.label == label {
			return f.contT
		}
	}
	return nil
}

func (b *builder) label(name string) *labelFrame {
	if b.labels == nil {
		b.labels = map[string]*labelFrame{}
	}
	lf, ok := b.labels[name]
	if !ok {
		lf = &labelFrame{target: b.newBlock()}
		b.labels[name] = lf
	}
	return lf
}

// labelName extracts the optional label of a branch statement.
func labelName(st *ast.BranchStmt) string {
	if st.Label == nil {
		return ""
	}
	return st.Label.Name
}

// Preds computes the predecessor list of blk within g. The builder
// stores only successor edges; analyses that need predecessors call
// this (it is O(edges), fine at function scale).
func (blk *Block) Preds(g *Graph) []*Block {
	var out []*Block
	for _, cand := range g.Blocks {
		for _, s := range cand.Succs {
			if s == blk {
				out = append(out, cand)
				break
			}
		}
	}
	return out
}

package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"vqprobe/internal/lint"
)

// sharedLoader amortizes the source importer's stdlib compilation
// across every golden package and the self-lint smoke test.
var sharedLoader = lint.NewLoader()

// wantRe matches expectation comments in golden files:
//
//	code() // want "regexp" "another"
//	// want+1 "regexp"   (diagnostic expected on the following line)
//
// The +N offset form exists for directive-check goldens, where the
// expectation cannot share a line with the directive it describes.
var wantRe = regexp.MustCompile(`// want(\+\d+)?((?: "(?:[^"\\]|\\.)*")+)`)

var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants scans a golden source file for expectation comments.
func parseWants(t *testing.T, path string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		lineNo := i + 1
		if m[1] != "" {
			var off int
			fmt.Sscanf(m[1], "+%d", &off)
			lineNo += off
		}
		for _, q := range wantArgRe.FindAllStringSubmatch(m[2], -1) {
			re, err := regexp.Compile(q[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, lineNo, q[1], err)
			}
			wants = append(wants, &expectation{line: lineNo, re: re})
		}
	}
	return wants
}

// goldenChecks lists every analyzer with a testdata package. Keep in
// sync with internal/lint/testdata/src/ and lint.All().
var goldenChecks = []string{
	"virtclock", "detrand", "walltaint", "maporder", "spanleak",
	"closecheck", "mutexcopy", "floatfmt", "ctxfirst", "directive",
	"errflow", "lockorder", "goleak", "stalesuppress",
}

func TestGoldenCoverageMatchesRegistry(t *testing.T) {
	have := map[string]bool{}
	for _, name := range goldenChecks {
		have[name] = true
	}
	for _, a := range lint.All() {
		if !have[a.Name] {
			t.Errorf("analyzer %s has no golden testdata package", a.Name)
		}
	}
}

func TestGolden(t *testing.T) {
	byName := lint.ByName()
	for _, name := range goldenChecks {
		t.Run(name, func(t *testing.T) {
			a, ok := byName[name]
			if !ok {
				t.Fatalf("no analyzer named %s", name)
			}
			dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := sharedLoader.LoadDir(dir, name, "vqlint.golden/"+name)
			if err != nil {
				t.Fatal(err)
			}
			for _, terr := range pkg.TypeErrors {
				t.Errorf("golden package must type-check: %v", terr)
			}

			analyzers := []*lint.Analyzer{a}
			if name == lint.StaleSuppressCheckName {
				// Staleness is only judged for directives whose named
				// checks actually ran, so this golden runs the full set.
				analyzers = lint.All()
			}
			runner := &lint.Runner{Analyzers: analyzers, Config: &lint.Config{}}
			diags := runner.Run([]*lint.Package{pkg})

			var wants []*expectation
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".go") {
					wants = append(wants, parseWants(t, filepath.Join(dir, e.Name()))...)
				}
			}
			if len(wants) == 0 {
				t.Fatal("golden package has no // want expectations; it proves nothing")
			}

			for _, d := range diags {
				if d.Suppressed {
					if d.SuppressReason == "" {
						t.Errorf("%s:%d: suppressed diagnostic lost its reason", d.Pos.Filename, d.Pos.Line)
					}
					continue
				}
				matched := false
				for _, w := range wants {
					if !w.hit && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic %s:%d: %s: %s",
						filepath.Base(d.Pos.Filename), d.Pos.Line, d.Check, d.Message)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("missing diagnostic: want %q on line %d", w.re.String(), w.line)
				}
			}
		})
	}
}

package lint

// All returns every built-in analyzer, in stable order. The directive
// meta-check is listed so `-checks`/`-list` can name it, but it is
// implemented inside the runner (suppression parsing) rather than as a
// Run/RunFile hook.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerVirtClock,
		AnalyzerDetRand,
		AnalyzerWallTaint,
		AnalyzerMapOrder,
		AnalyzerSpanLeak,
		AnalyzerCloseCheck,
		AnalyzerMutexCopy,
		AnalyzerFloatFmt,
		AnalyzerCtxFirst,
		AnalyzerErrFlow,
		AnalyzerLockOrder,
		AnalyzerGoLeak,
		{
			Name:     DirectiveCheckName,
			Severity: SeverityError,
			Doc: "Validates //lint:ignore directives: each must name a known check " +
				"and carry a written reason. Runs unconditionally — a malformed " +
				"suppression is itself an invariant violation.",
		},
		{
			Name:     StaleSuppressCheckName,
			Severity: SeverityWarn,
			Doc: "Audits //lint:ignore directives for staleness: a directive that " +
				"suppresses nothing (and whose named checks all ran) is reported " +
				"and deletable with -fix. Implemented inside the runner, after " +
				"suppression resolution.",
		},
	}
}

// ByName indexes All() by analyzer name.
func ByName() map[string]*Analyzer {
	m := make(map[string]*Analyzer)
	for _, a := range All() {
		m[a.Name] = a
	}
	return m
}

package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vqprobe/internal/lint"
)

// writeFixModule lays out a throwaway module with two fixable findings:
// a float printed through %v (floatfmt rewrites the verb) and a
// suppression naming a check that never fires (stalesuppress deletes
// the line).
func writeFixModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module fixtest\n\ngo 1.22\n",
		"p/p.go": `package p

import "fmt"

func render(v float64) string {
	//lint:ignore maporder nothing in this function iterates a map
	return fmt.Sprintf("v=%v", v)
}
`,
	}
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runFixModule(t *testing.T, root string) lint.ModuleRunResult {
	t.Helper()
	runner := &lint.Runner{Analyzers: lint.All(), Config: &lint.Config{}}
	res, err := lint.RunModule(root, nil, runner, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range res.TypeErrors {
		t.Fatalf("fix module must type-check: %v", terr)
	}
	return res
}

// TestFixIdempotent is the -fix contract: one ApplyFixes pass resolves
// every fixable finding, and a second run over the fixed source finds
// nothing left to do.
func TestFixIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module with the source importer; skipped in -short")
	}
	root := writeFixModule(t)

	res := runFixModule(t, root)
	var fixable int
	for _, d := range res.Diags {
		if !d.Suppressed && len(d.Edits) > 0 {
			fixable++
		}
	}
	if fixable != 2 {
		for _, d := range res.Diags {
			t.Logf("diag: %s %s (edits=%d suppressed=%v)", d.Check, d.Message, len(d.Edits), d.Suppressed)
		}
		t.Fatalf("want 2 fixable findings (floatfmt, stalesuppress), got %d", fixable)
	}

	fixed, err := lint.ApplyFixes(res.Diags)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Applied != 2 || fixed.Skipped != 0 {
		t.Fatalf("ApplyFixes: applied=%d skipped=%d, want 2/0", fixed.Applied, fixed.Skipped)
	}

	src, err := os.ReadFile(filepath.Join(root, "p", "p.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "%.6g") {
		t.Errorf("floatfmt fix missing: source still lacks %%.6g:\n%s", src)
	}
	if strings.Contains(string(src), "lint:ignore") {
		t.Errorf("stalesuppress fix missing: directive line survived:\n%s", src)
	}

	// Second pass: the fixed source must be clean, so -fix followed by
	// a plain run exits 0 and a second -fix run rewrites nothing.
	res2 := runFixModule(t, root)
	for _, d := range res2.Diags {
		if !d.Suppressed {
			t.Errorf("finding survived the fix pass: %s: %s", d.Check, d.Message)
		}
	}
	fixed2, err := lint.ApplyFixes(res2.Diags)
	if err != nil {
		t.Fatal(err)
	}
	if fixed2.Applied != 0 {
		t.Errorf("second ApplyFixes applied %d edits; -fix is not idempotent", fixed2.Applied)
	}
}

package lint

import (
	"fmt"
	"os"
	"sort"
)

// Edit is one machine-applicable text replacement: bytes [Start, End)
// of File are replaced with New. Analyzers attach edits to diagnostics
// whose suggested fix is mechanical enough to apply safely; `vqlint
// -fix` applies them. Edits use byte offsets from token.Position, so
// they are valid only against the exact file contents that were
// analyzed.
type Edit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	New   string `json:"new"`

	// DeleteLineIfBlank widens a pure deletion to swallow the whole
	// line when removing [Start, End) leaves only whitespace on it —
	// used when deleting a directive comment that sat on its own line.
	DeleteLineIfBlank bool `json:"deleteLineIfBlank,omitempty"`
}

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	Files   int // files rewritten
	Applied int // edits applied
	Skipped int // edits skipped because they overlapped an earlier edit
}

// ApplyFixes applies the edits of every unsuppressed diagnostic to the
// files on disk. Edits within a file are applied in ascending offset
// order; an edit overlapping one already applied is skipped (the next
// run applies it against fresh offsets — -fix converges because fixed
// code no longer produces the diagnostic). Fixing is idempotent: a
// clean tree stays byte-identical.
func ApplyFixes(diags []Diagnostic) (FixResult, error) {
	var res FixResult
	byFile := map[string][]Edit{}
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		for _, e := range d.Edits {
			byFile[e.File] = append(byFile[e.File], e)
		}
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	for _, file := range files {
		edits := byFile[file]
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start < edits[j].Start })
		src, err := os.ReadFile(file)
		if err != nil {
			return res, fmt.Errorf("lint: applying fixes: %w", err)
		}
		var out []byte
		last := 0 // end of the previous edit in src
		applied := 0
		for _, e := range edits {
			start, end := e.Start, e.End
			if start < last || end < start || end > len(src) {
				res.Skipped++
				continue
			}
			if e.DeleteLineIfBlank && e.New == "" {
				start, end = widenToBlankLine(src, start, end)
				if start < last {
					res.Skipped++
					continue
				}
			}
			out = append(out, src[last:start]...)
			out = append(out, e.New...)
			last = end
			applied++
		}
		if applied == 0 {
			continue
		}
		out = append(out, src[last:]...)
		info, err := os.Stat(file)
		if err != nil {
			return res, fmt.Errorf("lint: applying fixes: %w", err)
		}
		if err := os.WriteFile(file, out, info.Mode().Perm()); err != nil {
			return res, fmt.Errorf("lint: applying fixes: %w", err)
		}
		res.Files++
		res.Applied += applied
	}
	return res, nil
}

// widenToBlankLine extends a deletion to cover the whole line when the
// removal would leave only whitespace on it.
func widenToBlankLine(src []byte, start, end int) (int, int) {
	ls := start
	for ls > 0 && (src[ls-1] == ' ' || src[ls-1] == '\t') {
		ls--
	}
	le := end
	for le < len(src) && (src[le] == ' ' || src[le] == '\t' || src[le] == '\r') {
		le++
	}
	atLineStart := ls == 0 || src[ls-1] == '\n'
	if atLineStart && le < len(src) && src[le] == '\n' {
		return ls, le + 1
	}
	if atLineStart && le == len(src) {
		return ls, le
	}
	return start, end
}

// HasEdits reports whether any unsuppressed diagnostic carries an
// applicable edit.
func HasEdits(diags []Diagnostic) bool {
	for _, d := range diags {
		if !d.Suppressed && len(d.Edits) > 0 {
			return true
		}
	}
	return false
}

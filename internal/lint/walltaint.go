package lint

import (
	"go/ast"
	"go/types"

	"vqprobe/internal/lint/cfg"
)

// AnalyzerWallTaint is the cross-package determinism check. The
// call-site checks (virtclock, detrand) see only the line that reads
// the wall clock; walltaint follows the value. Using the module call
// graph it computes every function that transitively reaches time.Now
// or the global math/rand, then runs a forward dataflow over each
// function's CFG and fires when a wall-derived value reaches a
// deterministic sink — a function marked //lint:deterministic (the
// fleet encoders, sketch merges, snapshot writers, obs sampling).
//
// Suppressing the source suppresses the taint: a //lint:ignore
// virtclock/detrand/walltaint on the reading line declares wall time
// intentional there, and nothing downstream fires. That makes walltaint
// the check that catches the OTHER case: a suppressed-nowhere helper
// whose result quietly flows into an encoder three packages away.
var AnalyzerWallTaint = &Analyzer{
	Name:     "walltaint",
	Severity: SeverityError,
	Doc: "Cross-package taint analysis: reports wall-clock- or global-RNG-derived " +
		"values flowing into deterministic sinks (functions marked //lint:deterministic), " +
		"and sinks that transitively reach time.Now / math/rand themselves. " +
		"Call-site suppressions (virtclock/detrand/walltaint) stop taint at the source.",
	Run: runWallTaint,
}

const wallTaintFix = "derive the value from the virtual clock or a seeded RNG, or move the " +
	"wall-clock read out of the deterministic path; if wall time is intentional here, " +
	"suppress the source line with //lint:ignore walltaint <reason>"

func runWallTaint(p *Pass) {
	if p.Facts == nil || p.Info == nil {
		return // isolated run without the facts phase, or type errors
	}

	// Sinks that are themselves tainted: the marked function reaches a
	// source through its own call tree.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sym := p.DeclSymbol(fn)
			fs := p.Facts.Sink(sym)
			if fs == nil {
				continue
			}
			if ti := p.Facts.Tainted(sym); ti != nil {
				p.ReportPosition(ti.Pos,
					"deterministic sink "+shortSym(sym)+" transitively reaches "+ti.Root+
						" ("+p.Facts.TaintPath(sym)+"); sink contract: "+fs.SinkReason,
					wallTaintFix)
			}
		}
	}

	// Values flowing into sink calls: forward dataflow per function.
	for _, fi := range p.Functions() {
		p.wallTaintFunc(fi)
	}
}

// taintSrc explains why a value is wall-derived, for the message.
type taintSrc struct {
	root string // "time.Now", "rand.Intn"
	path string // witness call chain, e.g. "stamp -> time.Now"
}

// wallTaintFunc runs the gen-only forward taint lattice over one
// function: an object assigned from a tainted expression is tainted in
// every block reachable from the assignment (no kills — conservative),
// and a tainted expression passed to a deterministic sink is a finding.
// Flow sensitivity is what keeps `sink(x); x = helper()` quiet while a
// loop's back edge correctly taints the second iteration.
func (p *Pass) wallTaintFunc(fi *FuncInfo) {
	g := p.FuncGraph(fi)

	in := make([]map[types.Object]taintSrc, len(g.Blocks))
	for i := range in {
		in[i] = map[types.Object]taintSrc{}
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range g.Blocks {
			out := cloneTaint(in[blk.Index])
			for _, n := range blk.Nodes {
				p.taintTransfer(n, out, nil)
			}
			for _, succ := range blk.Succs {
				if mergeTaint(in[succ.Index], out) {
					changed = true
				}
			}
		}
	}

	// Reporting pass: replay each block from its fixpoint in-state.
	for _, blk := range g.Blocks {
		state := cloneTaint(in[blk.Index])
		for _, n := range blk.Nodes {
			p.taintTransfer(n, state, func(call *ast.CallExpr, sinkSym string, src taintSrc) {
				sink := p.Facts.Sink(sinkSym)
				reason := ""
				if sink != nil {
					reason = "; sink contract: " + sink.SinkReason
				}
				p.Report(call.Pos(),
					"wall-derived value ("+src.path+") flows into deterministic sink "+
						shortSym(sinkSym)+reason,
					wallTaintFix)
			})
		}
	}
}

// taintTransfer processes one CFG node against state: first checks sink
// calls inside it (reporting through onSink when non-nil), then applies
// assignment gens. Function literals are skipped — they are separate
// FuncInfos with their own graphs.
func (p *Pass) taintTransfer(n ast.Node, state map[types.Object]taintSrc, onSink func(*ast.CallExpr, string, taintSrc)) {
	for _, h := range cfg.HeaderNodes(n) {
		if onSink != nil {
			inspectSkipFuncLits(h, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sym, ok := p.CalleeSymbol(call)
				if !ok || p.Facts.Sink(sym) == nil {
					return true
				}
				args := append([]ast.Expr(nil), call.Args...)
				if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
					args = append(args, sel.X)
				}
				for _, arg := range args {
					if src, tainted := p.exprTaint(arg, state); tainted {
						onSink(call, sym, src)
						break
					}
				}
				return true
			})
		}
		p.taintGen(h, state)
	}
}

// taintGen records objects assigned from tainted expressions.
func (p *Pass) taintGen(n ast.Node, state map[types.Object]taintSrc) {
	mark := func(lhs ast.Expr, src taintSrc) {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.ObjectOf(id); obj != nil {
				state[obj] = src
			}
		}
	}
	switch st := n.(type) {
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
			// x, y := taintedCall(): every result is tainted.
			if src, tainted := p.exprTaint(st.Rhs[0], state); tainted {
				for _, lhs := range st.Lhs {
					mark(lhs, src)
				}
			}
			return
		}
		for i, rhs := range st.Rhs {
			if i >= len(st.Lhs) {
				break
			}
			if src, tainted := p.exprTaint(rhs, state); tainted {
				mark(st.Lhs[i], src)
			}
		}
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, isVal := spec.(*ast.ValueSpec)
			if !isVal {
				continue
			}
			multi := len(vs.Values) == 1 && len(vs.Names) > 1
			for i, name := range vs.Names {
				vi := i
				if multi {
					vi = 0
				}
				if vi >= len(vs.Values) {
					break
				}
				if src, tainted := p.exprTaint(vs.Values[vi], state); tainted {
					mark(name, src)
				}
			}
		}
	}
}

// exprTaint reports whether evaluating e yields a wall-derived value:
// it mentions a tainted object, calls a tainted function, or calls a
// source directly (unsuppressed).
func (p *Pass) exprTaint(e ast.Expr, state map[types.Object]taintSrc) (taintSrc, bool) {
	var found taintSrc
	tainted := false
	inspectSkipFuncLits(e, func(m ast.Node) bool {
		if tainted {
			return false
		}
		switch node := m.(type) {
		case *ast.Ident:
			if obj := p.Info.ObjectOf(node); obj != nil {
				if src, ok := state[obj]; ok {
					found, tainted = src, true
				}
			}
		case *ast.CallExpr:
			if src, ok := p.callTaint(node); ok {
				found, tainted = src, true
			}
		}
		return !tainted
	})
	return found, tainted
}

// callTaint classifies a call as wall-derived: a direct unsuppressed
// source read, or a call to a function the module facts mark tainted.
func (p *Pass) callTaint(call *ast.CallExpr) (taintSrc, bool) {
	if what, isSource := classifySourceCall(callResolver{p.pkg}, call); isSource {
		pos := p.Fset.Position(call.Pos())
		if p.pkg != nil && suppressesTaint(p.pkg.directives[pos.Filename], pos.Line) {
			return taintSrc{}, false
		}
		return taintSrc{root: what, path: what}, true
	}
	if sym, ok := p.CalleeSymbol(call); ok {
		if ti := p.Facts.Tainted(sym); ti != nil {
			return taintSrc{root: ti.Root, path: p.Facts.TaintPath(sym)}, true
		}
	}
	return taintSrc{}, false
}

func cloneTaint(m map[types.Object]taintSrc) map[types.Object]taintSrc {
	out := make(map[types.Object]taintSrc, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeTaint unions src into dst, reporting whether dst grew.
func mergeTaint(dst, src map[types.Object]taintSrc) bool {
	grew := false
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
			grew = true
		}
	}
	return grew
}

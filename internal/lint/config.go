package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Config controls which analyzers run where. It merges three layers,
// strongest last: the built-in default (everything on), the optional
// per-module config file (.vqlint.json at the module root), and the
// command-line -checks / -exclude flags.
type Config struct {
	// Checks, when non-empty, restricts analysis to exactly these
	// analyzer names (CLI -checks).
	Checks []string

	// Exclude globally disables these analyzer names (CLI -exclude).
	Exclude []string

	// DirExclude maps a module-relative directory prefix to the
	// analyzer names disabled under it. The special name "all"
	// disables every analyzer for that subtree. This is the
	// per-directory relaxation layer: e.g. cmd/ legitimately uses the
	// wall clock, so .vqlint.json ships {"dirExclude":{"cmd":
	// ["virtclock"]}}.
	DirExclude map[string][]string `json:"dirExclude"`
}

// ConfigFileName is looked up at the module root by LoadConfigFile.
const ConfigFileName = ".vqlint.json"

// LoadConfigFile reads path as a Config. A missing file yields an empty
// config and no error; a malformed one is an error (silently ignoring a
// typo'd config would un-enforce invariants).
func LoadConfigFile(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Config{}, nil
	}
	if err != nil {
		return nil, err
	}
	var cfg Config
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
	}
	return &cfg, nil
}

// Validate checks every analyzer name mentioned by the config against
// the known set, so a typo fails loudly instead of silently running (or
// skipping) the wrong check.
func (c *Config) Validate(known map[string]*Analyzer) error {
	var bad []string
	check := func(names []string) {
		for _, n := range names {
			if n == "all" {
				continue
			}
			if _, ok := known[n]; !ok {
				bad = append(bad, n)
			}
		}
	}
	check(c.Checks)
	check(c.Exclude)
	for _, names := range c.DirExclude {
		check(names)
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	knownNames := make([]string, 0, len(known))
	for n := range known {
		knownNames = append(knownNames, n)
	}
	sort.Strings(knownNames)
	return fmt.Errorf("lint: unknown analyzer name(s) %s (known: %s)",
		strings.Join(bad, ", "), strings.Join(knownNames, ", "))
}

// Enabled reports whether analyzer name should run at all given the
// global Checks/Exclude lists.
func (c *Config) Enabled(name string) bool {
	if len(c.Checks) > 0 && !contains(c.Checks, name) && name != DirectiveCheckName {
		// The directive meta-check always runs: a malformed
		// suppression must be caught even in a restricted run.
		return false
	}
	return !contains(c.Exclude, name) && !contains(c.Exclude, "all")
}

// EnabledIn reports whether analyzer name runs for a package in
// module-relative directory relDir, honoring DirExclude subtree rules.
func (c *Config) EnabledIn(name, relDir string) bool {
	if !c.Enabled(name) {
		return false
	}
	for prefix, names := range c.DirExclude {
		prefix = strings.Trim(prefix, "/")
		if relDir != prefix && !strings.HasPrefix(relDir, prefix+"/") {
			continue
		}
		if contains(names, name) || contains(names, "all") {
			return false
		}
	}
	return true
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// SplitList parses a comma-separated flag value into trimmed non-empty
// names.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

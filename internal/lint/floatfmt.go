package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// fmtFormatFuncs maps fmt's formatting functions to the index of their
// format-string argument.
var fmtFormatFuncs = map[string]int{
	"Sprintf": 0,
	"Printf":  0,
	"Errorf":  0,
	"Fprintf": 1,
	"Appendf": 1,
}

// AnalyzerFloatFmt enforces explicit precision when floats reach
// formatted output. %v renders a float with strconv's shortest-round-
// trip algorithm, so 0.1+0.2 prints as 0.30000000000000004 and two
// almost-equal accuracies print with different widths — report tables
// stop aligning, CSV diffs churn on the 17th digit, and golden files
// break on harmless refactors. Report and CSV emitters must choose a
// precision (%.3f, %.6g, strconv.FormatFloat with an explicit prec).
var AnalyzerFloatFmt = &Analyzer{
	Name:     "floatfmt",
	Severity: SeverityWarn,
	Doc: "Flags %v applied to float arguments in fmt formatting calls: report and " +
		"CSV output must pick an explicit precision (e.g. %.3f) so tables align " +
		"and diffs are stable.",
	RunFile: func(p *Pass, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := p.PkgFunc(call)
			if !ok || pkgPath != "fmt" {
				return true
			}
			fmtIdx, isFormatter := fmtFormatFuncs[name]
			if !isFormatter || len(call.Args) <= fmtIdx {
				return true
			}
			lit, ok := ast.Unparen(call.Args[fmtIdx]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			args := call.Args[fmtIdx+1:]
			for _, verb := range vVerbs(format) {
				if verb.arg >= len(args) {
					continue
				}
				if !isFloat(p.TypeOf(args[verb.arg])) {
					continue
				}
				msg := "float formatted with %v in fmt." + name + "; width varies per value and run"
				fix := "use an explicit precision verb such as %.3f or %.6g"
				// The fix rewrites the verb's trailing 'v' to '.6g' inside
				// the source literal — but only when literal bytes map 1:1
				// to format bytes: raw strings, or quoted strings free of
				// backslash escapes.
				if lit.Value[0] == '`' || !strings.Contains(lit.Value, "\\") {
					litFile, litStart, _ := p.Offsets(lit)
					p.ReportEdits(args[verb.arg].Pos(), msg, fix, Edit{
						File:  litFile,
						Start: litStart + verb.end,
						End:   litStart + verb.end + 1,
						New:   ".6g",
					})
				} else {
					p.Report(args[verb.arg].Pos(), msg, fix)
				}
			}
			return true
		})
	},
}

// vVerb is one bare %v occurrence: the operand index it consumes and
// the byte span [start, end) of the whole verb within the format
// string ("%v", "%-8v", ...).
type vVerb struct {
	arg        int
	start, end int
}

// verbVArgIndexes parses a printf format string and returns the operand
// indexes consumed by a bare %v verb.
func verbVArgIndexes(format string) []int {
	var out []int
	for _, v := range vVerbs(format) {
		out = append(out, v.arg)
	}
	return out
}

// vVerbs is the span-carrying scanner behind verbVArgIndexes. It tracks
// * width/precision operands so indexes stay aligned; explicit argument
// indexes (%[1]v) abort the scan, returning what was found so far (they
// are rare and not worth mis-attributing).
func vVerbs(format string) []vVerb {
	var out []vVerb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		start := i
		i++
		if i >= len(format) || format[i] == '%' {
			continue
		}
		// flags
		for i < len(format) && isFmtFlag(format[i]) {
			i++
		}
		if i < len(format) && format[i] == '[' {
			return out // explicit argument index: bail
		}
		// width
		for i < len(format) && isDigit(format[i]) {
			i++
		}
		if i < len(format) && format[i] == '*' {
			arg++
			i++
		}
		explicitPrec := false
		if i < len(format) && format[i] == '.' {
			explicitPrec = true
			i++
			for i < len(format) && isDigit(format[i]) {
				i++
			}
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			}
		}
		if i >= len(format) {
			break
		}
		if format[i] == 'v' && !explicitPrec {
			out = append(out, vVerb{arg: arg, start: start, end: i + 1})
		}
		arg++
	}
	return out
}

func isFmtFlag(c byte) bool {
	return c == '+' || c == '-' || c == '#' || c == ' ' || c == '0'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// isFloat reports whether t is (or is named with underlying)
// float32/float64, or a composite of them commonly passed to %v
// directly is not considered — only scalar floats.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

package obs

import "math"

// The cause-mix drift detector takes the paper's diagnosis from
// per-session to population-trend level: instead of asking "what is
// wrong with this session", it watches the distribution of diagnosed
// root causes across tumbling windows and flags the window where the
// mix shifts against a trailing baseline — a CDN starting to misbehave
// shows up as wan_cong mass growing before any single session looks
// unusual. The distance is Jensen–Shannon divergence (symmetric,
// bounded, defined for disjoint support), thresholds are deterministic,
// and the detector carries no hidden clock: same window sequence in,
// same events out.

// DriftConfig tunes a Detector. The zero value selects the defaults.
type DriftConfig struct {
	// Baseline is how many trailing windows form the reference mix;
	// zero selects 5.
	Baseline int
	// Threshold is the JSD (bits, in [0,1]) at or above which a window
	// raises a drift event; zero selects 0.02 — roughly 10× the
	// sampling noise of a ~1500-session window over ~9 classes, and
	// well under the shift a real cause-mix step produces.
	Threshold float64
	// MinSessions gates evaluation: windows (and baselines) smaller
	// than this are folded in but never scored, so sparse tails cannot
	// fire on noise. Zero selects 200.
	MinSessions uint64
	// NoiseMult scales the sampling-noise floor. Two finite samples of
	// the same underlying mix diverge by roughly
	// (k−1)/(2·ln2)·(1/n + 1/m) bits in expectation (chi-square), so a
	// window additionally must clear NoiseMult times that floor — a
	// fixed threshold alone would fire on pure noise in small windows.
	// Zero selects 3.
	NoiseMult float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Baseline <= 0 {
		c.Baseline = 5
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.02
	}
	if c.MinSessions == 0 {
		c.MinSessions = 200
	}
	if c.NoiseMult <= 0 {
		c.NoiseMult = 3
	}
	return c
}

// DriftEvent is one detected cause-mix shift.
type DriftEvent struct {
	// Window is the index of the offending window in the observed
	// sequence (0-based, counting every Observe call).
	Window int `json:"window"`
	// JSD is the Jensen–Shannon divergence (bits) between the window
	// and the trailing baseline.
	JSD float64 `json:"jsd"`
	// Cause names the class whose probability moved the most, and
	// Delta its probability change (signed, current − baseline).
	Cause string  `json:"cause"`
	Delta float64 `json:"delta"`
	// Sessions is the offending window's population.
	Sessions uint64 `json:"sessions"`
}

// Detector is the streaming drift detector. Feed it per-window class
// counts in window order; it maintains a trailing baseline of the last
// Baseline windows and, when a window diverges at or past Threshold,
// emits an event and re-baselines onto the offending window — so a
// step change raises exactly one event, not one per window until the
// trailing mix catches up.
type Detector struct {
	cfg     DriftConfig
	classes []string
	trail   [][]uint64 // last cfg.Baseline accepted windows, oldest first
	windows int        // Observe calls so far
}

// NewDetector builds a detector over the given class names (the
// per-window count vectors must use the same indexing).
func NewDetector(cfg DriftConfig, classes []string) *Detector {
	return &Detector{cfg: cfg.withDefaults(), classes: classes}
}

// Observe feeds the next window's class counts and reports whether it
// raised a drift event. The counts slice is copied.
func (d *Detector) Observe(counts []uint64) (DriftEvent, bool) {
	idx := d.windows
	d.windows++
	var n uint64
	for _, c := range counts {
		n += c
	}

	base, baseN := d.baseline(len(counts))
	evaluable := n >= d.cfg.MinSessions && baseN >= d.cfg.MinSessions && len(d.trail) == d.cfg.Baseline
	if evaluable {
		jsd := JensenShannon(toDist(base), toDist(counts))
		floor := d.cfg.NoiseMult * float64(len(counts)-1) / (2 * math.Ln2) *
			(1/float64(n) + 1/float64(baseN))
		if jsd >= d.cfg.Threshold && jsd >= floor {
			ev := DriftEvent{Window: idx, JSD: jsd, Sessions: n}
			ev.Cause, ev.Delta = topMover(d.classes, base, counts)
			// Re-baseline on the offending window: the new mix is the
			// new normal, and the step fires exactly once.
			d.trail = d.trail[:0]
			d.push(counts)
			return ev, true
		}
	}
	d.push(counts)
	return DriftEvent{}, false
}

// push folds a window into the trailing baseline ring.
func (d *Detector) push(counts []uint64) {
	c := append([]uint64(nil), counts...)
	if len(d.trail) == d.cfg.Baseline {
		copy(d.trail, d.trail[1:])
		d.trail[len(d.trail)-1] = c
		return
	}
	d.trail = append(d.trail, c)
}

// baseline sums the trailing windows.
func (d *Detector) baseline(k int) ([]uint64, uint64) {
	sum := make([]uint64, k)
	var n uint64
	for _, w := range d.trail {
		for i := range sum {
			if i < len(w) {
				sum[i] += w[i]
				n += w[i]
			}
		}
	}
	return sum, n
}

func toDist(counts []uint64) []float64 {
	out := make([]float64, len(counts))
	var n float64
	for _, c := range counts {
		n += float64(c)
	}
	if n == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / n
	}
	return out
}

// topMover returns the class with the largest absolute probability
// change between baseline and current. A near-tie (mass swapping
// between two classes moves both by the same amount) prefers the class
// gaining mass — naming the growing cause is the actionable half of a
// swap; remaining ties break to the lowest index.
func topMover(classes []string, base, cur []uint64) (string, float64) {
	pb, pc := toDist(base), toDist(cur)
	best, bestAbs := 0, -1.0
	for i := range pc {
		d := math.Abs(pc[i] - pb[i])
		switch {
		case d > bestAbs+1e-9:
			best, bestAbs = i, d
		case d > bestAbs-1e-9 && pc[i]-pb[i] > 0 && pc[best]-pb[best] < 0:
			best, bestAbs = i, d
		}
	}
	name := ""
	if best < len(classes) {
		name = classes[best]
	}
	return name, pc[best] - pb[best]
}

// JensenShannon returns the Jensen–Shannon divergence between two
// probability distributions (same length, each summing to 1; an
// all-zero distribution is treated as uniform-nothing and yields 0
// against itself). Log base 2, so the result lives in [0, 1]: 0 for
// identical distributions, 1 for disjoint support.
func JensenShannon(p, q []float64) float64 {
	var d float64
	for i := range p {
		m := (p[i] + q[i]) / 2
		if p[i] > 0 {
			d += p[i] / 2 * math.Log2(p[i]/m)
		}
		if i < len(q) && q[i] > 0 {
			d += q[i] / 2 * math.Log2(q[i]/m)
		}
	}
	// Clamp tiny negative float residue from cancellation.
	if d < 0 {
		return 0
	}
	return d
}

package obs

import "net/http"

// VarsHandler serves the plane's current snapshot as JSON — the /vars
// endpoint. The payload is Snapshot.EncodeJSON: sorted series with raw
// sample arrays plus derived rates and windowed quantiles, and every
// SLO's alert state. vqtop and the /dashboard page both read it.
func (p *Plane) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		data, err := p.Snapshot().EncodeJSON()
		if err != nil {
			http.Error(w, "obs: encoding snapshot: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
}

// DashboardHandler serves a self-contained HTML page that polls the
// sibling /vars endpoint and renders live rate sparklines, quantile
// trends and alert state. No external assets: the page is one response,
// usable from a laptop pointed at a lab box.
func (p *Plane) DashboardHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashboardHTML))
	})
}

// dashboardHTML is the /dashboard page. Design notes: single time axis
// per chart, 2px line marks, categorical slots in fixed order (p50/p95/
// p99 always blue/orange/aqua), values and labels in text ink rather
// than series colors, status color for firing alerts always paired with
// the word "firing", and a table view of latest values as the
// accessibility fallback. Light and dark palettes are both explicit.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>vqprobe dashboard</title>
<style>
  :root {
    color-scheme: light dark;
  }
  .viz-root {
    color-scheme: light;
    --page:           #f9f9f7;
    --surface-1:      #fcfcfb;
    --text-primary:   #0b0b0b;
    --text-secondary: #52514e;
    --text-muted:     #898781;
    --grid:           #e1e0d9;
    --baseline:       #c3c2b7;
    --border:         rgba(11,11,11,0.10);
    --series-1:       #2a78d6;
    --series-2:       #eb6834;
    --series-3:       #1baf7a;
    --status-critical:#d03b3b;
    --status-good:    #0ca30c;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --page:           #0d0d0d;
      --surface-1:      #1a1a19;
      --text-primary:   #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted:     #898781;
      --grid:           #2c2c2a;
      --baseline:       #383835;
      --border:         rgba(255,255,255,0.10);
      --series-1:       #3987e5;
      --series-2:       #d95926;
      --series-3:       #199e70;
      --status-critical:#d03b3b;
      --status-good:    #0ca30c;
    }
  }
  body.viz-root {
    margin: 0; padding: 16px;
    background: var(--page); color: var(--text-primary);
    font: 13px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 15px; font-weight: 600; margin: 0; }
  header { display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap; margin-bottom: 12px; }
  #meta { color: var(--text-muted); }
  #alerts { display: flex; gap: 8px; flex-wrap: wrap; }
  .chip {
    border: 1px solid var(--border); border-radius: 10px; padding: 1px 8px;
    color: var(--text-secondary); background: var(--surface-1);
  }
  .chip.firing { border-color: var(--status-critical); color: var(--text-primary); }
  .chip.firing .dot { color: var(--status-critical); }
  .chip .dot { color: var(--status-good); }
  #grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(300px, 1fr)); gap: 10px; }
  .card {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 6px; padding: 8px 10px; position: relative;
  }
  .card .name {
    color: var(--text-secondary); font-size: 12px;
    overflow: hidden; text-overflow: ellipsis; white-space: nowrap;
  }
  .card .val { font-size: 16px; font-weight: 600; margin: 2px 0 4px; }
  .card .val small { color: var(--text-muted); font-weight: 400; font-size: 11px; }
  .legend { display: flex; gap: 10px; color: var(--text-secondary); font-size: 11px; margin-top: 2px; }
  .legend .sw { display: inline-block; width: 10px; height: 2px; vertical-align: middle; margin-right: 4px; }
  svg { display: block; width: 100%; height: 64px; }
  .tip {
    position: absolute; pointer-events: none; display: none;
    background: var(--surface-1); border: 1px solid var(--border); border-radius: 4px;
    padding: 3px 6px; font-size: 11px; color: var(--text-secondary);
    white-space: nowrap; z-index: 2;
  }
  details { margin-top: 16px; color: var(--text-secondary); }
  table { border-collapse: collapse; margin-top: 6px; font-variant-numeric: tabular-nums; }
  th, td { text-align: left; padding: 2px 14px 2px 0; border-bottom: 1px solid var(--grid); }
  th { color: var(--text-muted); font-weight: 500; }
</style>
</head>
<body class="viz-root">
<header>
  <h1>vqprobe telemetry</h1>
  <span id="meta">connecting…</span>
  <span id="alerts"></span>
</header>
<div id="grid"></div>
<details><summary>Table view (latest values)</summary>
  <table><thead><tr><th>series</th><th>kind</th><th>value</th><th>rate /s</th><th>p99</th></tr></thead>
  <tbody id="tbody"></tbody></table>
</details>
<script>
"use strict";
var W = 300, H = 64, PAD = 3;
var QCOLORS = ["var(--series-1)", "var(--series-2)", "var(--series-3)"];

function fmt(v) {
  if (v === null || v === undefined || !isFinite(v)) return "–";
  if (v !== 0 && Math.abs(v) < 0.01) return v.toExponential(2);
  if (Math.abs(v) >= 1000) return Math.round(v).toLocaleString("en-US");
  return +v.toFixed(3) + "";
}
function secs(ns) { return (ns / 1e9).toFixed(1) + "s"; }

// seriesLines: which arrays to plot for a series, fixed slot order.
function seriesLines(s) {
  if (s.kind === "histogram") {
    return [{n: "p50", d: s.p50}, {n: "p95", d: s.p95}, {n: "p99", d: s.p99}];
  }
  if (s.kind === "counter") return [{n: "rate/s", d: s.rate}];
  return [{n: "value", d: s.v}];
}

function pathFor(d, lo, hi) {
  if (!d || d.length < 2) return "";
  var span = hi - lo || 1, pts = [];
  for (var i = 0; i < d.length; i++) {
    var x = PAD + (W - 2 * PAD) * i / (d.length - 1);
    var y = H - PAD - (H - 2 * PAD) * ((d[i] - lo) / span);
    pts.push((i ? "L" : "M") + x.toFixed(1) + " " + y.toFixed(1));
  }
  return pts.join(" ");
}

function drawCard(card, s) {
  var lines = seriesLines(s), lo = Infinity, hi = -Infinity;
  lines.forEach(function (l) {
    (l.d || []).forEach(function (v) { if (v < lo) lo = v; if (v > hi) hi = v; });
  });
  if (!isFinite(lo)) { lo = 0; hi = 1; }
  if (lo > 0 && lo < hi * 0.5) lo = 0; // anchor near-zero ranges at zero
  var svg = "";
  // Recessive chrome: one baseline hairline, one mid gridline.
  svg += '<line x1="0" y1="' + (H - PAD) + '" x2="' + W + '" y2="' + (H - PAD) + '" stroke="var(--baseline)" stroke-width="1"/>';
  svg += '<line x1="0" y1="' + (H / 2) + '" x2="' + W + '" y2="' + (H / 2) + '" stroke="var(--grid)" stroke-width="1"/>';
  lines.forEach(function (l, i) {
    svg += '<path d="' + pathFor(l.d, lo, hi) + '" fill="none" stroke="' + QCOLORS[i] + '" stroke-width="2" stroke-linejoin="round"/>';
  });
  svg += '<line class="xh" x1="-9" y1="0" x2="-9" y2="' + H + '" stroke="var(--baseline)" stroke-width="1"/>';
  card.querySelector("svg").innerHTML = svg;

  var last = lines[0].d && lines[0].d.length ? lines[0].d[lines[0].d.length - 1] : null;
  var unit = s.kind === "counter" ? " <small>/s</small>" :
    (s.kind === "histogram" ? " <small>p50</small>" : "");
  card.querySelector(".val").innerHTML = fmt(last) + unit;

  var lg = card.querySelector(".legend");
  if (lines.length > 1) {
    lg.innerHTML = lines.map(function (l, i) {
      return '<span><span class="sw" style="background:' + QCOLORS[i] + '"></span>' + l.n + "</span>";
    }).join("");
  } else {
    lg.innerHTML = "";
  }
  card._series = s;
  card._lines = lines;
}

function ensureCard(grid, cards, s) {
  var card = cards[s.name];
  if (!card) {
    card = document.createElement("div");
    card.className = "card";
    card.innerHTML = '<div class="name"></div><div class="val">–</div>' +
      '<svg viewBox="0 0 ' + W + " " + H + '" preserveAspectRatio="none" role="img"></svg>' +
      '<div class="legend"></div><div class="tip"></div>';
    card.querySelector(".name").textContent = s.name;
    card.querySelector("svg").setAttribute("aria-label", s.name + " trend");
    hookHover(card);
    grid.appendChild(card);
    cards[s.name] = card;
  }
  return card;
}

function hookHover(card) {
  var svg = card.querySelector("svg"), tip = card.querySelector(".tip");
  svg.addEventListener("mousemove", function (ev) {
    var s = card._series, lines = card._lines;
    if (!s || !s.t_ns || s.t_ns.length < 2) return;
    var r = svg.getBoundingClientRect();
    var i = Math.round((ev.clientX - r.left) / r.width * (s.t_ns.length - 1));
    i = Math.max(0, Math.min(s.t_ns.length - 1, i));
    var x = PAD + (W - 2 * PAD) * i / (s.t_ns.length - 1);
    var xh = svg.querySelector(".xh");
    if (xh) { xh.setAttribute("x1", x); xh.setAttribute("x2", x); }
    tip.innerHTML = "t=" + secs(s.t_ns[i]) + " " + lines.map(function (l) {
      return l.n + "=" + fmt(l.d ? l.d[i] : null);
    }).join(" ");
    tip.style.display = "block";
    tip.style.left = Math.min(ev.clientX - r.left + 12, r.width - 120) + "px";
    tip.style.top = "6px";
  });
  svg.addEventListener("mouseleave", function () {
    tip.style.display = "none";
    var xh = svg.querySelector(".xh");
    if (xh) { xh.setAttribute("x1", -9); xh.setAttribute("x2", -9); }
  });
}

function renderAlerts(alerts) {
  var el = document.getElementById("alerts");
  el.innerHTML = (alerts || []).map(function (a) {
    var firing = a.state === "firing";
    return '<span class="chip' + (firing ? " firing" : "") + '">' +
      '<span class="dot">' + (firing ? "▲" : "●") + "</span> " +
      a.slo + " " + a.state + " (burn " + fmt(a.burn_fast) + "/" + fmt(a.burn_slow) + ")</span>";
  }).join("");
}

function renderTable(series) {
  var rows = series.map(function (s) {
    var last = function (d) { return d && d.length ? d[d.length - 1] : null; };
    var v = s.kind === "histogram" ? last(s.count) : last(s.v);
    return "<tr><td>" + s.name + "</td><td>" + s.kind + "</td><td>" + fmt(v) +
      "</td><td>" + fmt(last(s.rate)) + "</td><td>" + fmt(last(s.p99)) + "</td></tr>";
  });
  document.getElementById("tbody").innerHTML = rows.join("");
}

var cards = {};
function refresh() {
  fetch("vars").then(function (r) { return r.json(); }).then(function (snap) {
    var grid = document.getElementById("grid");
    document.getElementById("meta").textContent =
      "t=" + secs(snap.now_ns) + " · " + snap.series.length + " series";
    renderAlerts(snap.alerts);
    snap.series.forEach(function (s) { drawCard(ensureCard(grid, cards, s), s); });
    renderTable(snap.series);
  }).catch(function (err) {
    document.getElementById("meta").textContent = "poll failed: " + err;
  });
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`

package obs

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vqprobe/internal/metrics"
)

// tick advances a plane-under-test on a virtual clock.
func tick(p *Plane, sec int) { p.Sample(time.Duration(sec) * time.Second) }

// buildPlane assembles a registry with one of each metric kind plus a
// plane over it.
func buildPlane(capacity int, slos []SLO) (*metrics.Registry, *Plane) {
	reg := metrics.NewRegistry()
	p := New(Config{Registry: reg, Capacity: capacity, SLOs: slos})
	return reg, p
}

func TestPlaneRingBasics(t *testing.T) {
	reg, p := buildPlane(4, nil)
	c := reg.Counter("jobs_total", "jobs")
	g := reg.Gauge("depth", "queue depth")
	h := reg.Histogram("lat_seconds", "latency", []float64{0.1, 1})

	for s := 1; s <= 6; s++ {
		c.Add(10)
		g.Set(float64(s))
		h.Observe(0.05)
		h.Observe(2) // overflow bucket
		tick(p, s)
	}

	if got := p.Ticks(); got != 6 {
		t.Fatalf("ticks = %d, want 6", got)
	}
	if got := p.Now(); got != 6*time.Second {
		t.Fatalf("now = %v, want 6s", got)
	}
	if v, ok := p.Last("jobs_total"); !ok || v != 60 {
		t.Fatalf("Last(jobs_total) = %v,%v, want 60,true", v, ok)
	}
	if v, ok := p.Last("depth"); !ok || v != 6 {
		t.Fatalf("Last(depth) = %v,%v, want 6,true", v, ok)
	}
	// Capacity 4: ring holds ticks 3..6; rate over the held window is
	// 10 counts/second.
	if r := p.Rate("jobs_total", 10*time.Second); r != 10 {
		t.Fatalf("Rate(jobs_total) = %v, want 10", r)
	}
	// Histogram rate counts observations: 2 per tick.
	if r := p.Rate("lat_seconds", 10*time.Second); r != 2 {
		t.Fatalf("Rate(lat_seconds) = %v, want 2", r)
	}

	snap := p.Snapshot()
	if len(snap.Series) != 3 {
		t.Fatalf("snapshot has %d series, want 3", len(snap.Series))
	}
	// Sorted by name: depth, jobs_total, lat_seconds.
	names := []string{"depth", "jobs_total", "lat_seconds"}
	for i, want := range names {
		if snap.Series[i].Name != want {
			t.Fatalf("series[%d] = %q, want %q", i, snap.Series[i].Name, want)
		}
	}
	lat := snap.Series[2]
	if len(lat.T) != 4 {
		t.Fatalf("ring kept %d samples, want 4 (capacity)", len(lat.T))
	}
	if lat.T[0] != int64(3*time.Second) || lat.T[3] != int64(6*time.Second) {
		t.Fatalf("ring window = [%d, %d], want [3s, 6s]", lat.T[0], lat.T[3])
	}
	// Each inter-sample window sees one 0.05 and one 2.0 observation:
	// p50 interpolates inside [0, 0.1], p99 reports the top finite bound.
	if lat.P99[1] != 1 {
		t.Fatalf("p99 = %v, want 1 (top finite bound)", lat.P99[1])
	}
}

func TestPlaneRateYoungRingAnchorsAtOrigin(t *testing.T) {
	reg, p := buildPlane(16, nil)
	c := reg.Counter("jobs_total", "jobs")
	c.Add(100)
	tick(p, 10)
	// One sample at t=10s holding 100: the window anchors at the
	// process origin (0 at t=0), so the rate is 100/10s.
	if r := p.Rate("jobs_total", time.Minute); r != 10 {
		t.Fatalf("Rate = %v, want 10", r)
	}
}

// TestSnapshotDeterminism pins the byte-identical contract: two planes
// fed the same load and tick sequence encode identically.
func TestSnapshotDeterminism(t *testing.T) {
	run := func() []byte {
		reg, p := buildPlane(32, DefaultServeSLOs())
		c := reg.Counter("vqserve_submitted_total", "n")
		e := reg.Counter("vqserve_errors_total", "n")
		h := reg.Histogram(`vqserve_stage_latency_seconds{stage="total"}`, "lat", []float64{0.01, 0.1, 1})
		rng := rand.New(rand.NewSource(7))
		for s := 1; s <= 40; s++ {
			for i := 0; i < 50; i++ {
				c.Inc()
				if rng.Intn(10) == 0 {
					e.Inc()
				}
				h.Observe(rng.Float64())
			}
			tick(p, s)
		}
		data, err := p.Snapshot().EncodeJSON()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same load, different snapshot encodings")
	}
}

// TestSnapshotMergeWorkerInvariance pins the sharded-collection
// contract: N per-worker planes ticked on the same clock merge to the
// same bytes regardless of how the load was split or the merge order —
// and match a single plane that saw the combined load.
func TestSnapshotMergeWorkerInvariance(t *testing.T) {
	const ticks, perTick = 20, 60
	bounds := []float64{0.25, 1, 2}

	// Deterministic load: item k at tick s contributes to counter,
	// gauge and histogram in a fixed way.
	load := func(regs []*metrics.Registry, planes []*Plane, split int) {
		cs := make([]*metrics.Counter, len(regs))
		gs := make([]*metrics.Gauge, len(regs))
		hs := make([]*metrics.Histogram, len(regs))
		for i, reg := range regs {
			cs[i] = reg.Counter("work_total", "n")
			gs[i] = reg.Gauge("inflight", "n")
			hs[i] = reg.Histogram("lat_seconds", "lat", bounds)
		}
		for s := 1; s <= ticks; s++ {
			for k := 0; k < perTick; k++ {
				w := 0
				if split > 1 {
					w = k % split
				}
				cs[w].Add(uint64(k%3 + 1))
				gs[w].Add(1)
				// 0.25 steps are binary-exact, so histogram sums add
				// associatively and the split cannot perturb bytes.
				hs[w].Observe(float64(k%7) * 0.25)
			}
			for _, p := range planes {
				tick(p, s)
			}
		}
	}

	build := func(n int) ([]*metrics.Registry, []*Plane) {
		regs := make([]*metrics.Registry, n)
		planes := make([]*Plane, n)
		for i := range regs {
			regs[i] = metrics.NewRegistry()
			planes[i] = New(Config{Registry: regs[i], Capacity: 64})
		}
		return regs, planes
	}

	encodeMerged := func(planes []*Plane, order []int) []byte {
		merged := planes[order[0]].Snapshot()
		for _, i := range order[1:] {
			if err := merged.Merge(planes[i].Snapshot()); err != nil {
				t.Fatalf("merge: %v", err)
			}
		}
		data, err := merged.EncodeJSON()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		return data
	}

	// Reference: one plane sees everything.
	regs1, planes1 := build(1)
	load(regs1, planes1, 1)
	want := encodeMerged(planes1, []int{0})

	for _, workers := range []int{2, 4} {
		regs, planes := build(workers)
		load(regs, planes, workers)
		order := make([]int, workers)
		for i := range order {
			order[i] = i
		}
		got := encodeMerged(planes, order)
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: merged snapshot differs from single-plane reference", workers)
		}
		// Reverse merge order: commutativity.
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
		if got := encodeMerged(planes, order); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: merge is order-sensitive", workers)
		}
	}
}

func TestSnapshotMergeRejectsMismatch(t *testing.T) {
	rega, pa := buildPlane(8, nil)
	regb, pb := buildPlane(8, nil)
	rega.Counter("x", "n").Inc()
	regb.Counter("x", "n").Inc()
	tick(pa, 1)
	tick(pb, 2) // different tick time
	if err := pa.Snapshot().Merge(pb.Snapshot()); err == nil {
		t.Fatalf("merge accepted mismatched tick times")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	reg, p := buildPlane(8, nil)
	reg.Counter("x_total", "n").Add(5)
	reg.Histogram("h", "h", []float64{1}).Observe(0.5)
	tick(p, 1)
	tick(p, 2)
	data, err := p.Snapshot().EncodeJSON()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	again, err := back.EncodeJSON()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("snapshot does not round-trip through JSON")
	}
}

// TestPlaneConcurrentSampling exercises the plane under -race: writers
// hammer the registry while a reader polls snapshots and a ticker
// samples.
func TestPlaneConcurrentSampling(t *testing.T) {
	reg, p := buildPlane(16, DefaultServeSLOs())
	c := reg.Counter("vqserve_submitted_total", "n")
	h := reg.Histogram(`vqserve_stage_latency_seconds{stage="total"}`, "lat", []float64{0.01, 0.1, 1})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.02)
				}
			}
		}()
	}
	for s := 1; s <= 50; s++ {
		tick(p, s)
		if s%10 == 0 {
			if _, err := p.Snapshot().EncodeJSON(); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			p.Alerts()
			p.Rate("vqserve_submitted_total", 5*time.Second)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPromParseRoundTrip scrapes a live registry's text exposition and
// checks the parse reproduces Registry.Snapshot exactly.
func TestPromParseRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("jobs_total", "jobs done").Add(42)
	reg.Gauge(`depth{shard="0"}`, "queue depth").Set(3.5)
	h := reg.Histogram(`lat_seconds{stage="total"}`, "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	reg.WriteText(&buf)
	got, err := ParsePromText(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := reg.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("parsed %d series, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.FullName() != w.FullName() || g.Kind != w.Kind {
			t.Fatalf("series %d: got %s/%s, want %s/%s", i, g.FullName(), g.Kind, w.FullName(), w.Kind)
		}
		if g.Value != w.Value || g.Sum != w.Sum || g.Count != w.Count {
			t.Fatalf("series %s: value/sum/count mismatch: %+v vs %+v", w.FullName(), g, w)
		}
		if fmt.Sprint(g.Bounds) != fmt.Sprint(w.Bounds) || fmt.Sprint(g.Counts) != fmt.Sprint(w.Counts) {
			t.Fatalf("series %s: buckets mismatch: %v/%v vs %v/%v",
				w.FullName(), g.Bounds, g.Counts, w.Bounds, w.Counts)
		}
	}

	// OpenMetrics form (exemplars + # EOF) parses to the same result.
	buf.Reset()
	h.ObserveExemplar(0.05, "trace-1")
	reg.WriteOpenMetrics(&buf)
	if _, err := ParsePromText(&buf); err != nil {
		t.Fatalf("parse OpenMetrics: %v", err)
	}
}

func TestPromParseUntypedAndEdgeCases(t *testing.T) {
	in := "some_metric 12.5\n" +
		"# TYPE esc gauge\n" +
		"esc{msg=\"a,b}c\"} 1\n"
	got, err := ParsePromText(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d series, want 2", len(got))
	}
	if got[0].Kind != "gauge" || got[0].Value != 12.5 {
		t.Fatalf("untyped sample: %+v", got[0])
	}
	if got[1].Labels != `msg="a,b}c"` {
		t.Fatalf("quoted label body mangled: %q", got[1].Labels)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"vqprobe/internal/metrics"
)

// Duration is a time.Duration that unmarshals from JSON as either a
// string ("5m", "1h30m") or a nanosecond number, so SLO config files
// read naturally.
type Duration time.Duration

// UnmarshalJSON implements the dual string/number form.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

// MarshalJSON renders the human-readable string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// SLO is one declarative service-level objective, evaluated as a
// multi-window burn-rate alert (Google SRE workbook style): the alert
// fires only when BOTH the fast and the slow window burn above the
// threshold — the fast window gives detection latency, the slow window
// keeps one transient spike from paging.
//
// Exactly one of the two objective forms is used:
//
//   - ratio: Bad and Total name two counter series (full names, labels
//     included); the error rate is ΔBad/ΔTotal over each window.
//   - latency: Hist names a histogram series and ThresholdS the bound;
//     observations above the threshold are "bad". The effective
//     threshold snaps to the largest bucket bound not exceeding it.
//
// Burn rate is errRate/(1-Objective): 1.0 means the error budget is
// being consumed exactly at the sustainable pace, 14.4 means a 30-day
// budget gone in 2 days.
type SLO struct {
	Name string `json:"name"`

	Bad   string `json:"bad,omitempty"`
	Total string `json:"total,omitempty"`

	Hist       string  `json:"hist,omitempty"`
	ThresholdS float64 `json:"threshold_s,omitempty"`

	// Objective is the target success fraction, e.g. 0.999.
	Objective float64 `json:"objective"`
	// FastWindow/SlowWindow are the two burn windows; zero selects
	// 5m/1h.
	FastWindow Duration `json:"fast_window,omitempty"`
	SlowWindow Duration `json:"slow_window,omitempty"`
	// Burn is the firing threshold on both windows; zero selects 14.4.
	Burn float64 `json:"burn,omitempty"`
}

func (s SLO) withDefaults() SLO {
	if s.FastWindow <= 0 {
		s.FastWindow = Duration(5 * time.Minute)
	}
	if s.SlowWindow <= 0 {
		s.SlowWindow = Duration(time.Hour)
	}
	if s.Burn <= 0 {
		s.Burn = 14.4
	}
	return s
}

func (s SLO) validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("obs: SLO needs a name")
	case s.Hist != "" && (s.Bad != "" || s.Total != ""):
		return fmt.Errorf("obs: SLO %q: hist and bad/total are mutually exclusive", s.Name)
	case s.Hist == "" && (s.Bad == "" || s.Total == ""):
		return fmt.Errorf("obs: SLO %q: need hist+threshold_s or bad+total", s.Name)
	case s.Hist != "" && s.ThresholdS <= 0:
		return fmt.Errorf("obs: SLO %q: latency form needs threshold_s > 0", s.Name)
	case s.Objective <= 0 || s.Objective >= 1:
		return fmt.Errorf("obs: SLO %q: objective must be in (0,1)", s.Name)
	}
	return nil
}

// LoadSLOs parses a JSON array of SLOs and validates each.
func LoadSLOs(r io.Reader) ([]SLO, error) {
	var slos []SLO
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&slos); err != nil {
		return nil, fmt.Errorf("obs: parsing SLO config: %w", err)
	}
	for _, s := range slos {
		if err := s.validate(); err != nil {
			return nil, err
		}
	}
	return slos, nil
}

// DefaultServeSLOs returns the stock objectives for a vqserve daemon:
// availability, p99-style diagnose latency, shed rate and queue
// timeout rate, against the engine's standard metric names.
func DefaultServeSLOs() []SLO {
	return []SLO{
		{Name: "availability", Bad: "vqserve_errors_total", Total: "vqserve_submitted_total", Objective: 0.999},
		{Name: "latency", Hist: `vqserve_stage_latency_seconds{stage="total"}`, ThresholdS: 0.25, Objective: 0.999},
		{Name: "shed", Bad: "vqserve_shed_total", Total: "vqserve_submitted_total", Objective: 0.999},
		{Name: "timeout", Bad: "vqserve_timeouts_total", Total: "vqserve_submitted_total", Objective: 0.999},
	}
}

// Alert is one SLO's externally visible state, surfaced on /healthz
// (firing only), in /vars snapshots, and on vqtop.
type Alert struct {
	SLO   string `json:"slo"`
	State string `json:"state"` // "firing" or "ok"
	// SinceNS is when the current state was entered, on the driving
	// clock.
	SinceNS  int64   `json:"since_ns"`
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
	// Threshold echoes the SLO's firing burn rate.
	Threshold float64 `json:"threshold"`
}

// sloState is one SLO's live evaluation state plus its exported
// burn-rate gauges.
type sloState struct {
	slo          SLO
	firing       bool
	sinceNS      int64
	burnFast     float64
	burnSlow     float64
	fastG, slowG *metrics.Gauge
}

func newSLOState(s SLO, reg *metrics.Registry) *sloState {
	st := &sloState{slo: s}
	if reg != nil {
		st.fastG = reg.Gauge(fmt.Sprintf("vqserve_slo_burn_rate{slo=%q,window=%q}", s.Name, "fast"),
			"SLO error-budget burn rate per window")
		st.slowG = reg.Gauge(fmt.Sprintf("vqserve_slo_burn_rate{slo=%q,window=%q}", s.Name, "slow"),
			"SLO error-budget burn rate per window")
	}
	return st
}

// evalSLOs re-evaluates every objective against the ring store at tick
// time tns, updates the burn gauges, and logs state transitions.
// Caller holds p.mu.
func (p *Plane) evalSLOs(tns int64) {
	for _, st := range p.slos {
		st.burnFast = p.burnOver(st.slo, tns, int64(st.slo.FastWindow))
		st.burnSlow = p.burnOver(st.slo, tns, int64(st.slo.SlowWindow))
		if st.fastG != nil {
			st.fastG.Set(st.burnFast)
			st.slowG.Set(st.burnSlow)
		}
		firing := st.burnFast >= st.slo.Burn && st.burnSlow >= st.slo.Burn
		if firing != st.firing {
			st.firing = firing
			st.sinceNS = tns
			if l := p.cfg.Logger; l != nil {
				if firing {
					l.Warn("slo alert firing", "slo", st.slo.Name,
						"burn_fast", st.burnFast, "burn_slow", st.burnSlow,
						"threshold", st.slo.Burn,
						"fast_window", time.Duration(st.slo.FastWindow).String(),
						"slow_window", time.Duration(st.slo.SlowWindow).String())
				} else {
					l.Info("slo alert resolved", "slo", st.slo.Name,
						"burn_fast", st.burnFast, "burn_slow", st.burnSlow)
				}
			}
		}
	}
}

// burnOver computes one objective's burn rate over a trailing window.
func (p *Plane) burnOver(s SLO, tns, windowNS int64) float64 {
	var bad, total float64
	if s.Hist != "" {
		r := p.ring(s.Hist)
		if r == nil {
			return 0
		}
		bad, total = r.badTotalOver(tns, windowNS, s.ThresholdS)
	} else {
		rb, rt := p.ring(s.Bad), p.ring(s.Total)
		if rb == nil || rt == nil {
			return 0
		}
		bad, _ = rb.deltaOver(tns, windowNS)
		total, _ = rt.deltaOver(tns, windowNS)
	}
	if total <= 0 {
		return 0
	}
	return (bad / total) / (1 - s.Objective)
}

// Alerts returns every SLO's current state in configuration order.
func (p *Plane) Alerts() []Alert {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alertsLocked(false)
}

// FiringAlerts returns only the currently firing alerts — the /healthz
// "alerts" field (empty slice, not nil, when all objectives are met,
// so the JSON field renders as [] rather than null).
func (p *Plane) FiringAlerts() []Alert {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alertsLocked(true)
}

func (p *Plane) alertsLocked(firingOnly bool) []Alert {
	out := []Alert{}
	for _, st := range p.slos {
		if firingOnly && !st.firing {
			continue
		}
		state := "ok"
		if st.firing {
			state = "firing"
		}
		out = append(out, Alert{
			SLO: st.slo.Name, State: state, SinceNS: st.sinceNS,
			BurnFast: st.burnFast, BurnSlow: st.burnSlow, Threshold: st.slo.Burn,
		})
	}
	return out
}

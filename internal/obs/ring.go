package obs

import "vqprobe/internal/metrics"

// ring is the fixed-capacity sample store for one series. Counters and
// gauges keep one float64 per sample; histograms keep the cumulative
// per-bucket counts, sum and count per sample, which is what makes
// windowed quantiles (delta between two samples → sketch.Hist) and
// snapshot merging exact rather than approximate.
type ring struct {
	name   string
	kind   string
	bounds []float64 // histogram bucket upper bounds, shared, read-only

	t []int64   // sample times, ns on the driving clock
	v []float64 // counter/gauge sampled value

	// histogram-only parallel arrays
	count   []uint64
	sum     []float64
	buckets [][]uint64 // per-bucket (non-cumulative across buckets) counts

	head    int // next write position
	n       int // samples currently held
	wrapped bool
}

func newRing(name, kind string, bounds []float64, capacity int) *ring {
	r := &ring{
		name:   name,
		kind:   kind,
		bounds: bounds,
		t:      make([]int64, capacity),
	}
	if kind == "histogram" {
		r.count = make([]uint64, capacity)
		r.sum = make([]float64, capacity)
		r.buckets = make([][]uint64, capacity)
	} else {
		r.v = make([]float64, capacity)
	}
	return r
}

// append records one sample, overwriting the oldest once full.
func (r *ring) append(tns int64, s *metrics.SeriesSnapshot) {
	i := r.head
	r.t[i] = tns
	if r.kind == "histogram" {
		r.count[i] = s.Count
		r.sum[i] = s.Sum
		// Reuse the slot's bucket slice when shapes match; Snapshot
		// hands us a fresh copy we could retain, but keeping our own
		// storage makes ownership obvious.
		if cap(r.buckets[i]) >= len(s.Counts) {
			r.buckets[i] = r.buckets[i][:len(s.Counts)]
			copy(r.buckets[i], s.Counts)
		} else {
			r.buckets[i] = append([]uint64(nil), s.Counts...)
		}
	} else {
		r.v[i] = s.Value
	}
	r.head++
	if r.head == len(r.t) {
		r.head = 0
		r.wrapped = true
	}
	if r.n < len(r.t) {
		r.n++
	}
}

// phys maps logical index i (0 = oldest held sample) to storage index.
func (r *ring) phys(i int) int {
	if !r.wrapped {
		return i
	}
	return (r.head + i) % len(r.t)
}

func (r *ring) timeAt(i int) int64   { return r.t[r.phys(i)] }
func (r *ring) value(i int) float64  { return r.v[r.phys(i)] }
func (r *ring) countAt(i int) uint64 { return r.count[r.phys(i)] }
func (r *ring) sumAt(i int) float64  { return r.sum[r.phys(i)] }

// bucketsAt returns the cumulative bucket counts of logical sample i
// (read-only; storage is reused on wrap).
func (r *ring) bucketsAt(i int) []uint64 { return r.buckets[r.phys(i)] }

// atOrBefore returns the logical index of the latest sample whose time
// is <= tns. The second result is false when every held sample is
// later: the caller then either falls back to the oldest sample
// (wrapped ring — history lost) or to the process-start origin (young
// ring — the counter was 0 at t=0 by construction).
func (r *ring) atOrBefore(tns int64) (int, bool) {
	lo, hi := 0, r.n // first index with time > tns
	for lo < hi {
		mid := (lo + hi) / 2
		if r.timeAt(mid) <= tns {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, false
	}
	return lo - 1, true
}

// monotone value accessors for delta math: counters and histogram
// counts both behave as cumulative series.
func (r *ring) cumAt(i int) float64 {
	if r.kind == "histogram" {
		return float64(r.countAt(i))
	}
	return r.value(i)
}

// deltaOver returns the cumulative increase and the covered span in
// seconds over the trailing window ending at tns. A young ring that
// does not yet span the window anchors at the process origin (0 at
// t=0); a wrapped ring anchors at its oldest sample. Counter resets
// (value decreasing) clamp to zero rather than going negative.
func (r *ring) deltaOver(tns, windowNS int64) (delta, spanSec float64) {
	if r.n == 0 {
		return 0, 0
	}
	last := r.n - 1
	cut := tns - windowNS
	var baseV float64
	var baseT int64
	if j, ok := r.atOrBefore(cut); ok {
		baseV, baseT = r.cumAt(j), r.timeAt(j)
	} else if r.wrapped {
		baseV, baseT = r.cumAt(0), r.timeAt(0)
	} else {
		baseV, baseT = 0, 0 // series started at zero with the process
	}
	delta = r.cumAt(last) - baseV
	if delta < 0 {
		delta = 0
	}
	return delta, float64(r.timeAt(last)-baseT) / 1e9
}

// leCountAt returns, for a histogram ring, the cumulative number of
// observations at or below threshold at logical sample i: the sum of
// buckets whose upper bound is <= threshold. Observations in the first
// bucket whose bound exceeds the threshold count as "above" — the
// effective threshold is the largest bucket bound not exceeding it.
func (r *ring) leCountAt(i int, threshold float64) uint64 {
	b := r.bucketsAt(i)
	var le uint64
	for j, bound := range r.bounds {
		if bound > threshold {
			break
		}
		le += b[j]
	}
	return le
}

// badTotalOver returns, for a histogram ring, the number of
// observations above threshold and the total observation count over
// the trailing window ending at tns (same anchoring as deltaOver).
func (r *ring) badTotalOver(tns, windowNS int64, threshold float64) (bad, total float64) {
	if r.n == 0 {
		return 0, 0
	}
	last := r.n - 1
	cut := tns - windowNS
	var baseCount, baseLE uint64
	if j, ok := r.atOrBefore(cut); ok {
		baseCount, baseLE = r.countAt(j), r.leCountAt(j, threshold)
	} else if r.wrapped {
		baseCount, baseLE = r.countAt(0), r.leCountAt(0, threshold)
	}
	dCount := int64(r.countAt(last)) - int64(baseCount)
	dLE := int64(r.leCountAt(last, threshold)) - int64(baseLE)
	if dCount < 0 {
		dCount = 0
	}
	if dLE < 0 {
		dLE = 0
	}
	if dLE > dCount {
		dLE = dCount
	}
	return float64(dCount - dLE), float64(dCount)
}

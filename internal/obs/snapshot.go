package obs

import (
	"encoding/json"
	"fmt"
	"sort"

	"vqprobe/internal/sketch"
)

// Snapshot is the ring store unrolled into chronological arrays: the
// /vars payload, the vqtop input, and the mergeable interchange form
// for multi-replica rollups. Series are sorted by name and the struct
// holds no maps, so EncodeJSON is byte-deterministic for identical
// ring contents — the property the worker-invariance tests pin.
type Snapshot struct {
	NowNS  int64    `json:"now_ns"`
	Series []Series `json:"series"`
	Alerts []Alert  `json:"alerts,omitempty"`
}

// Series is one metric's sampled history plus derived views. Raw
// arrays (T, V, Count, Sum, Buckets) are the merge substrate; Rate and
// the quantile arrays are recomputed from raw data after any merge.
type Series struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// T holds sample times in ns on the driving clock, oldest first.
	T []int64 `json:"t_ns"`
	// V holds counter/gauge sampled values (cumulative for counters).
	V []float64 `json:"v,omitempty"`
	// Rate is the per-second increase between consecutive samples, for
	// counters and histogram observation counts (Rate[0] is 0: no
	// predecessor inside the ring).
	Rate []float64 `json:"rate,omitempty"`
	// Histogram raw state per sample: cumulative observation count and
	// sum, and per-bucket counts (len(Bounds)+1, last = overflow).
	Bounds  []float64  `json:"bounds,omitempty"`
	Count   []uint64   `json:"count,omitempty"`
	Sum     []float64  `json:"sum,omitempty"`
	Buckets [][]uint64 `json:"buckets,omitempty"`
	// Windowed quantiles: per sample, over the observations that
	// arrived since the previous sample (the first sample covers
	// everything before it), through internal/sketch interpolation.
	P50 []float64 `json:"p50,omitempty"`
	P95 []float64 `json:"p95,omitempty"`
	P99 []float64 `json:"p99,omitempty"`
}

// Snapshot unrolls the ring store. Series come out sorted by full
// name; derived rate/quantile arrays are filled in.
func (p *Plane) Snapshot() *Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := &Snapshot{NowNS: p.now, Alerts: p.alertsLocked(false)}
	for _, r := range p.rings {
		s := Series{Name: r.name, Kind: r.kind}
		s.T = make([]int64, r.n)
		for i := 0; i < r.n; i++ {
			s.T[i] = r.timeAt(i)
		}
		if r.kind == "histogram" {
			s.Bounds = append([]float64(nil), r.bounds...)
			s.Count = make([]uint64, r.n)
			s.Sum = make([]float64, r.n)
			s.Buckets = make([][]uint64, r.n)
			for i := 0; i < r.n; i++ {
				s.Count[i] = r.countAt(i)
				s.Sum[i] = r.sumAt(i)
				s.Buckets[i] = append([]uint64(nil), r.bucketsAt(i)...)
			}
		} else {
			s.V = make([]float64, r.n)
			for i := 0; i < r.n; i++ {
				s.V[i] = r.value(i)
			}
		}
		s.derive()
		snap.Series = append(snap.Series, s)
	}
	sort.Slice(snap.Series, func(i, j int) bool { return snap.Series[i].Name < snap.Series[j].Name })
	return snap
}

// derive recomputes Rate and the windowed quantile arrays from the raw
// sample arrays. Safe to call repeatedly (after construction or merge).
func (s *Series) derive() {
	n := len(s.T)
	switch s.Kind {
	case "gauge":
		s.Rate, s.P50, s.P95, s.P99 = nil, nil, nil, nil
		return
	case "counter":
		s.Rate = make([]float64, n)
		for i := 1; i < n; i++ {
			s.Rate[i] = rate(s.V[i]-s.V[i-1], s.T[i]-s.T[i-1])
		}
		return
	case "histogram":
		s.Rate = make([]float64, n)
		s.P50 = make([]float64, n)
		s.P95 = make([]float64, n)
		s.P99 = make([]float64, n)
		prev := make([]uint64, len(s.Bounds)+1)
		for i := 0; i < n; i++ {
			if i > 0 {
				s.Rate[i] = rate(float64(s.Count[i])-float64(s.Count[i-1]), s.T[i]-s.T[i-1])
			}
			s.P50[i], s.P95[i], s.P99[i] = bucketQuantiles(s.Bounds, s.Buckets[i], prev)
			copy(prev, s.Buckets[i])
		}
	}
}

func rate(delta float64, dtNS int64) float64 {
	if dtNS <= 0 || delta <= 0 {
		return 0
	}
	return delta / (float64(dtNS) / 1e9)
}

// bucketQuantiles computes p50/p95/p99 of the observations that landed
// between two cumulative bucket snapshots (prev may be all-zero for
// "everything so far"), through the shared sketch machinery. The open
// tails are conservatively bounded: the underflow bin spans [0,
// bounds[0]] and the overflow bin reports the last finite bound, so an
// overflow-heavy window reads as "at least the top bucket bound".
func bucketQuantiles(bounds []float64, cur, prev []uint64) (p50, p95, p99 float64) {
	if len(bounds) == 0 {
		return 0, 0, 0
	}
	h := sketch.Hist{Edges: bounds, Counts: make([]uint64, len(bounds)+1)}
	for i := range h.Counts {
		d := int64(cur[i]) - int64(prev[i])
		if d > 0 {
			h.Counts[i] = uint64(d)
			h.N += uint64(d)
		}
	}
	if h.N == 0 {
		return 0, 0, 0
	}
	// Substitute deterministic extremes for the open tails: exact
	// minima/maxima are not recoverable from bucket deltas.
	h.Min = 0
	if h.Counts[0] == 0 {
		for i := 1; i < len(h.Counts); i++ {
			if h.Counts[i] > 0 {
				h.Min = bounds[i-1]
				break
			}
		}
	}
	h.Max = bounds[len(bounds)-1]
	if h.Counts[len(h.Counts)-1] == 0 {
		for i := len(h.Counts) - 2; i >= 0; i-- {
			if h.Counts[i] > 0 {
				h.Max = bounds[i]
				break
			}
		}
	}
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}

// EncodeJSON renders the snapshot deterministically (sorted series, no
// maps, fixed float formatting via encoding/json).
func (s *Snapshot) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", " ")
}

// DecodeSnapshot parses an EncodeJSON payload (vqtop's /vars client).
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Merge folds o into s: series are matched by name and must have been
// sampled at identical tick times (planes driven by the same clock —
// shards of one process, or replicas on a shared virtual clock).
// Counters, histogram counts/sums/buckets add exactly; gauges add too
// (sum semantics: queue depths and inflight counts aggregate by
// addition). Series present in only one snapshot are carried over.
// Derived arrays are recomputed and the result re-sorted, so merging
// in any order yields byte-identical encodings. Alerts are per-plane
// state and do not merge: the result carries none.
func (s *Snapshot) Merge(o *Snapshot) error {
	if o.NowNS > s.NowNS {
		s.NowNS = o.NowNS
	}
	s.Alerts = nil
	byName := make(map[string]int, len(s.Series))
	for i := range s.Series {
		byName[s.Series[i].Name] = i
	}
	for i := range o.Series {
		os := &o.Series[i]
		j, ok := byName[os.Name]
		if !ok {
			s.Series = append(s.Series, *copySeries(os))
			continue
		}
		ms := &s.Series[j]
		if ms.Kind != os.Kind {
			return fmt.Errorf("obs: merge %s: kind %s vs %s", os.Name, ms.Kind, os.Kind)
		}
		if len(ms.T) != len(os.T) {
			return fmt.Errorf("obs: merge %s: %d vs %d samples", os.Name, len(ms.T), len(os.T))
		}
		for k := range ms.T {
			if ms.T[k] != os.T[k] {
				return fmt.Errorf("obs: merge %s: sample %d at t=%d vs t=%d", os.Name, k, ms.T[k], os.T[k])
			}
		}
		switch ms.Kind {
		case "counter", "gauge":
			for k := range ms.V {
				ms.V[k] += os.V[k]
			}
		case "histogram":
			if len(ms.Bounds) != len(os.Bounds) {
				return fmt.Errorf("obs: merge %s: bucket layouts differ", os.Name)
			}
			for k := range ms.Count {
				ms.Count[k] += os.Count[k]
				ms.Sum[k] += os.Sum[k]
				for b := range ms.Buckets[k] {
					ms.Buckets[k][b] += os.Buckets[k][b]
				}
			}
		}
	}
	for i := range s.Series {
		s.Series[i].derive()
	}
	sort.Slice(s.Series, func(i, j int) bool { return s.Series[i].Name < s.Series[j].Name })
	return nil
}

func copySeries(s *Series) *Series {
	c := *s
	c.T = append([]int64(nil), s.T...)
	c.V = append([]float64(nil), s.V...)
	c.Bounds = append([]float64(nil), s.Bounds...)
	c.Count = append([]uint64(nil), s.Count...)
	c.Sum = append([]float64(nil), s.Sum...)
	if s.Buckets != nil {
		c.Buckets = make([][]uint64, len(s.Buckets))
		for i := range s.Buckets {
			c.Buckets[i] = append([]uint64(nil), s.Buckets[i]...)
		}
	}
	c.derive()
	return &c
}

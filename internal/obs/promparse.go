package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vqprobe/internal/metrics"
)

// ParsePromText parses Prometheus text exposition (version 0.0.4, as
// written by metrics.Registry.WriteText, OpenMetrics accepted too) back
// into series snapshots — the inverse scrape that lets vqtop run a
// local plane over a remote daemon's /metrics endpoint. Histogram
// _bucket/_sum/_count lines are reassembled into one histogram snapshot
// with per-bucket (non-cumulative) counts; families without a # TYPE
// line are treated as gauges. Series come out in first-seen order, so a
// stable exposition yields a stable snapshot order.
func ParsePromText(r io.Reader) ([]metrics.SeriesSnapshot, error) {
	kinds := map[string]string{}     // family base name -> kind
	hists := map[string]*histBuild{} // histogram full name -> builder
	var order []string               // histogram full names, first-seen
	var out []metrics.SeriesSnapshot

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) >= 4 && f[1] == "TYPE" {
				kinds[f[2]] = f[3]
			}
			continue
		}
		name, labels, value, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: prom text line %d: %w", lineNo, err)
		}
		base, suffix := splitSuffix(name, kinds)
		switch suffix {
		case "": // plain counter/gauge sample
			kind := kinds[base]
			if kind != "counter" && kind != "gauge" {
				kind = "gauge" // untyped exposition reads as gauge
			}
			out = append(out, metrics.SeriesSnapshot{
				Name: base, Labels: labels, Kind: kind, Value: value,
			})
		case "bucket":
			rest, le, ok := extractLE(labels)
			if !ok {
				return nil, fmt.Errorf("obs: prom text line %d: _bucket without le label", lineNo)
			}
			h := histAt(hists, &order, base, rest)
			if le == "+Inf" {
				h.infCum = uint64(value)
				h.sawInf = true
			} else {
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("obs: prom text line %d: bad le %q", lineNo, le)
				}
				h.bounds = append(h.bounds, bound)
				h.cums = append(h.cums, uint64(value))
			}
		case "sum":
			histAt(hists, &order, base, labels).sum = value
		case "count":
			histAt(hists, &order, base, labels).count = uint64(value)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading prom text: %w", err)
	}

	for _, full := range order {
		s, err := hists[full].finish()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// histBuild accumulates one histogram series' exposition lines.
type histBuild struct {
	name   string
	labels string
	bounds []float64
	cums   []uint64 // cumulative counts per finite bound, exposition order
	infCum uint64
	sawInf bool
	sum    float64
	count  uint64
}

func histAt(hists map[string]*histBuild, order *[]string, base, labels string) *histBuild {
	full := base
	if labels != "" {
		full += "{" + labels + "}"
	}
	h, ok := hists[full]
	if !ok {
		h = &histBuild{name: base, labels: labels}
		hists[full] = h
		*order = append(*order, full)
	}
	return h
}

// finish converts cumulative bucket counts back to per-bucket counts.
func (h *histBuild) finish() (metrics.SeriesSnapshot, error) {
	full := h.name
	if h.labels != "" {
		full += "{" + h.labels + "}"
	}
	counts := make([]uint64, len(h.bounds)+1)
	var prev uint64
	for i, c := range h.cums {
		if c < prev {
			return metrics.SeriesSnapshot{}, fmt.Errorf("obs: histogram %s: non-monotone buckets", full)
		}
		counts[i] = c - prev
		prev = c
	}
	total := h.count
	if h.sawInf {
		total = h.infCum
	}
	if total < prev {
		return metrics.SeriesSnapshot{}, fmt.Errorf("obs: histogram %s: count below bucket total", full)
	}
	counts[len(h.bounds)] = total - prev
	return metrics.SeriesSnapshot{
		Name: h.name, Labels: h.labels, Kind: "histogram",
		Bounds: h.bounds, Counts: counts, Sum: h.sum, Count: total,
	}, nil
}

// splitSample breaks "name{labels} value [# exemplar]" into its parts.
// Label values are quoted strings; braces and spaces inside quotes are
// honored.
func splitSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j, err := closeBrace(rest, i)
		if err != nil {
			return "", "", 0, err
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		f := strings.IndexByte(rest, ' ')
		if f < 0 {
			return "", "", 0, fmt.Errorf("no value on sample line")
		}
		name = rest[:f]
		rest = strings.TrimSpace(rest[f+1:])
	}
	// Strip OpenMetrics exemplar annotation and trailing timestamp.
	if i := strings.Index(rest, " #"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	if f := strings.Fields(rest); len(f) > 0 {
		rest = f[0]
	}
	v, perr := strconv.ParseFloat(rest, 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad value %q", rest)
	}
	return name, labels, v, nil
}

// closeBrace finds the index of the '}' matching the '{' at open,
// skipping quoted label values (with backslash escapes).
func closeBrace(s string, open int) (int, error) {
	inQuote := false
	for i := open + 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("unterminated label set")
}

// splitSuffix decides whether a sample name is a histogram component
// (_bucket/_sum/_count of a family # TYPE'd histogram) and returns the
// family base plus the component suffix ("" for plain samples).
func splitSuffix(name string, kinds map[string]string) (base, suffix string) {
	for _, suf := range [...]string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			b := strings.TrimSuffix(name, suf)
			if kinds[b] == "histogram" {
				return b, suf[1:]
			}
		}
	}
	return name, ""
}

// extractLE removes the le label pair from a label body, returning the
// remaining body, the le value, and whether le was present.
func extractLE(labels string) (rest, le string, ok bool) {
	parts := splitLabels(labels)
	kept := parts[:0]
	for _, p := range parts {
		if strings.HasPrefix(p, "le=") {
			v := strings.TrimPrefix(p, "le=")
			le = strings.Trim(v, `"`)
			ok = true
			continue
		}
		kept = append(kept, p)
	}
	return strings.Join(kept, ","), le, ok
}

// splitLabels splits a label body on top-level commas (quotes honored).
func splitLabels(labels string) []string {
	if labels == "" {
		return nil
	}
	var parts []string
	inQuote := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				parts = append(parts, labels[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, labels[start:])
}

// Package obs is the live telemetry plane: a fixed-capacity ring
// time-series store sampling a metrics.Registry, an SLO engine
// evaluating declarative objectives as multi-window burn-rate alerts,
// and a cause-mix drift detector over windowed population summaries.
// It is the trend layer the paper's diagnosis story needs at operations
// scale — point-in-time counters say what the system is doing now; the
// obs plane says whether p99 diagnose latency is burning its SLO and
// whether the fleet's root-cause mix just shifted.
//
// The plane is clock-agnostic: Sample(now) is an explicit tick, so
// simulations drive it from their virtual clock (deterministic: same
// seed + same tick times ⇒ byte-identical snapshots and alert
// sequences), while live daemons run RunWall, the one wall-clock
// driver. Quantiles over ring samples go through internal/sketch — the
// same exact mergeable histogram machinery the fleet summaries use.
package obs

import (
	"log/slog"
	"sync"
	"time"

	"vqprobe/internal/metrics"
)

// Config assembles a Plane. Registry is the only required field.
type Config struct {
	// Registry is the metric source sampled on every tick.
	Registry *metrics.Registry
	// Capacity is the per-series ring size in samples; zero selects 360
	// (12 minutes of history at a 2s interval).
	Capacity int
	// SLOs are the declarative objectives evaluated each tick.
	SLOs []SLO
	// Logger receives structured alert transition events; nil disables
	// alert logging (evaluation still happens).
	Logger *slog.Logger
	// OnSample, when set, runs after each tick outside the plane lock —
	// the hook vqfleet's -progress reporting hangs off.
	OnSample func(p *Plane, now time.Duration)
}

// Plane is the live telemetry plane over one registry. All methods are
// safe for concurrent use; Sample ticks are serialized by the caller's
// clock (one RunWall goroutine, or explicit virtual-clock calls).
type Plane struct {
	cfg Config

	mu    sync.Mutex
	index map[string]int // series full name -> rings slot
	rings []*ring
	slos  []*sloState
	now   int64 // last sample time, ns
	ticks uint64
}

// New builds a plane over cfg.Registry. SLO burn-rate gauges
// (vqserve_slo_burn_rate{slo=...,window=...}) are registered up front
// so they appear in the registry's exposition from the first scrape.
func New(cfg Config) *Plane {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 360
	}
	p := &Plane{cfg: cfg, index: map[string]int{}}
	for _, s := range cfg.SLOs {
		p.slos = append(p.slos, newSLOState(s.withDefaults(), cfg.Registry))
	}
	return p
}

// Sample takes one tick at time now (on whatever clock the caller
// drives — virtual in simulations, wall in RunWall): it snapshots the
// registry into the ring store and re-evaluates every SLO.
//
//lint:deterministic simulation replays compare plane state tick-for-tick; now must come from the driving clock
func (p *Plane) Sample(now time.Duration) {
	p.Ingest(now, p.cfg.Registry.Snapshot())
}

// Ingest appends externally produced series snapshots as one tick —
// the seam vqtop's /metrics polling mode uses to run a local plane
// over a remote daemon's exposition.
func (p *Plane) Ingest(now time.Duration, series []metrics.SeriesSnapshot) {
	tns := int64(now)
	p.mu.Lock()
	for i := range series {
		s := &series[i]
		name := s.FullName()
		slot, ok := p.index[name]
		if !ok {
			slot = len(p.rings)
			p.index[name] = slot
			p.rings = append(p.rings, newRing(name, s.Kind, s.Bounds, p.cfg.Capacity))
		}
		p.rings[slot].append(tns, s)
	}
	p.now = tns
	p.ticks++
	p.evalSLOs(tns)
	p.mu.Unlock()
	if p.cfg.OnSample != nil {
		p.cfg.OnSample(p, now)
	}
}

// RunWall drives the plane from the host clock until stop closes: the
// single wall-time driver live daemons (vqserve, vqfleet -progress)
// use. Simulated code must call Sample on its virtual clock instead.
func (p *Plane) RunWall(interval time.Duration, stop <-chan struct{}) {
	//lint:ignore virtclock the live obs plane samples real daemons; wall ticks are the point
	tick := time.NewTicker(interval)
	defer tick.Stop()
	//lint:ignore virtclock wall epoch anchoring live sample timestamps, by design
	start := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		//lint:ignore virtclock elapsed wall time since the epoch above, by design
		p.Sample(time.Since(start))
	}
}

// Now returns the time of the last tick on the driving clock.
func (p *Plane) Now() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Duration(p.now)
}

// Ticks returns how many samples the plane has taken.
func (p *Plane) Ticks() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ticks
}

// Last returns the most recent sampled value of a counter or gauge
// series (by full name, labels included), and whether it exists.
func (p *Plane) Last(name string) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.ring(name)
	if r == nil || r.n == 0 {
		return 0, false
	}
	return r.value(r.n - 1), true
}

// Rate returns the per-second increase of a counter series (or a
// histogram's observation count) over the trailing window, 0 when the
// series is unknown or has no usable span.
func (p *Plane) Rate(name string, window time.Duration) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.ring(name)
	if r == nil {
		return 0
	}
	delta, span := r.deltaOver(p.now, int64(window))
	if span <= 0 {
		return 0
	}
	return delta / span
}

// ring returns the named series ring, nil when absent. Caller holds mu.
func (p *Plane) ring(name string) *ring {
	if slot, ok := p.index[name]; ok {
		return p.rings[slot]
	}
	return nil
}

package obs

import (
	"math"
	"testing"
)

func TestJensenShannon(t *testing.T) {
	uni := []float64{0.25, 0.25, 0.25, 0.25}
	if d := JensenShannon(uni, uni); d != 0 {
		t.Fatalf("JSD(p,p) = %v, want 0", d)
	}
	p := []float64{1, 0}
	q := []float64{0, 1}
	if d := JensenShannon(p, q); math.Abs(d-1) > 1e-12 {
		t.Fatalf("JSD(disjoint) = %v, want 1", d)
	}
	a := []float64{0.7, 0.2, 0.1}
	b := []float64{0.5, 0.3, 0.2}
	ab, ba := JensenShannon(a, b), JensenShannon(b, a)
	if math.Abs(ab-ba) > 1e-12 {
		t.Fatalf("JSD not symmetric: %v vs %v", ab, ba)
	}
	if ab <= 0 || ab >= 1 {
		t.Fatalf("JSD(a,b) = %v, want in (0,1)", ab)
	}
	zero := []float64{0, 0, 0}
	if d := JensenShannon(zero, zero); d != 0 {
		t.Fatalf("JSD(zero,zero) = %v, want 0", d)
	}
}

// mix builds a window of n sessions with the given class fractions.
func mix(n uint64, fracs ...float64) []uint64 {
	out := make([]uint64, len(fracs))
	var used uint64
	for i, f := range fracs {
		out[i] = uint64(float64(n) * f)
		used += out[i]
	}
	out[0] += n - used // rounding remainder to the first class
	return out
}

var driftClasses = []string{"good", "wan_cong", "lte_sig", "device_cpu"}

// TestDriftTruePositiveGold pins the step-change detection: a stable
// mix for 10 windows, then a step where wan_cong mass triples, raises
// exactly one event at the step window with wan_cong as the top mover.
func TestDriftTruePositiveGold(t *testing.T) {
	d := NewDetector(DriftConfig{}, driftClasses)
	var events []DriftEvent
	for w := 0; w < 20; w++ {
		counts := mix(1500, 0.80, 0.10, 0.06, 0.04)
		if w >= 10 {
			counts = mix(1500, 0.60, 0.30, 0.06, 0.04)
		}
		if ev, ok := d.Observe(counts); ok {
			events = append(events, ev)
		}
	}
	if len(events) != 1 {
		t.Fatalf("got %d drift events %v, want exactly 1", len(events), events)
	}
	ev := events[0]
	if ev.Window != 10 {
		t.Fatalf("event at window %d, want 10", ev.Window)
	}
	if ev.Cause != "wan_cong" {
		t.Fatalf("top mover = %q, want wan_cong", ev.Cause)
	}
	if ev.Delta < 0.15 || ev.Delta > 0.25 {
		t.Fatalf("delta = %v, want ≈ +0.20", ev.Delta)
	}
	if ev.JSD < 0.02 {
		t.Fatalf("JSD %v below threshold yet fired", ev.JSD)
	}
	if ev.Sessions != 1500 {
		t.Fatalf("sessions = %d, want 1500", ev.Sessions)
	}
}

// TestDriftNearMissGold pins the negative side: a perturbation sized
// just under the threshold never fires, across a long run.
func TestDriftNearMissGold(t *testing.T) {
	d := NewDetector(DriftConfig{}, driftClasses)
	for w := 0; w < 40; w++ {
		counts := mix(1500, 0.80, 0.10, 0.06, 0.04)
		if w >= 10 {
			// Small wobble: ~2 points of mass moving, JSD ≈ 0.001,
			// an order of magnitude under the 0.02 threshold.
			counts = mix(1500, 0.78, 0.12, 0.06, 0.04)
		}
		if ev, ok := d.Observe(counts); ok {
			t.Fatalf("near-miss fired at window %d: %+v", w, ev)
		}
	}
}

// TestDriftRebaselinesAfterFire checks the step becomes the new normal:
// a second, different step after the first fires a second single event
// (once the rebuilt 5-window baseline is full again — so a step at
// window 20 is scored at window 20, baseline being windows 15-19).
func TestDriftRebaselinesAfterFire(t *testing.T) {
	d := NewDetector(DriftConfig{}, driftClasses)
	var events []DriftEvent
	phase := func(w int) []uint64 {
		switch {
		case w < 10:
			return mix(1500, 0.80, 0.10, 0.06, 0.04)
		case w < 20:
			return mix(1500, 0.60, 0.30, 0.06, 0.04)
		default:
			return mix(1500, 0.60, 0.10, 0.26, 0.04)
		}
	}
	for w := 0; w < 30; w++ {
		if ev, ok := d.Observe(phase(w)); ok {
			events = append(events, ev)
		}
	}
	if len(events) != 2 {
		t.Fatalf("got %d events %v, want 2 (one per step)", len(events), events)
	}
	if events[0].Window != 10 || events[1].Window != 20 {
		t.Fatalf("events at windows %d,%d, want 10,20", events[0].Window, events[1].Window)
	}
	if events[1].Cause != "lte_sig" {
		t.Fatalf("second event mover = %q, want lte_sig", events[1].Cause)
	}
}

// TestDriftNoiseFloorScalesWithPopulation: the same proportional step
// (JSD ≈ 0.048, clear of the fixed 0.02 threshold) fires at 1500
// sessions/window but is suppressed at 100, where the sampling-noise
// floor (≈ 0.078 for 4 classes) exceeds the observed divergence.
func TestDriftNoiseFloorScalesWithPopulation(t *testing.T) {
	for _, tc := range []struct {
		n    uint64
		want bool
	}{{1500, true}, {100, false}} {
		d := NewDetector(DriftConfig{MinSessions: 50}, driftClasses)
		fired := false
		for w := 0; w < 20; w++ {
			counts := mix(tc.n, 0.80, 0.10, 0.06, 0.04)
			if w >= 10 {
				counts = mix(tc.n, 0.60, 0.30, 0.06, 0.04)
			}
			if _, ok := d.Observe(counts); ok {
				fired = true
			}
		}
		if fired != tc.want {
			t.Fatalf("n=%d: fired=%v, want %v", tc.n, fired, tc.want)
		}
	}
}

// TestDriftMinSessionsGate: sparse windows are folded in but never
// scored, no matter how divergent.
func TestDriftMinSessionsGate(t *testing.T) {
	d := NewDetector(DriftConfig{MinSessions: 200}, driftClasses)
	for w := 0; w < 10; w++ {
		if _, ok := d.Observe(mix(50, 0.80, 0.10, 0.06, 0.04)); ok {
			t.Fatalf("fired on pre-baseline window %d", w)
		}
	}
	// Wildly different mix, but only 50 sessions: gated.
	if ev, ok := d.Observe(mix(50, 0.10, 0.80, 0.06, 0.04)); ok {
		t.Fatalf("fired on sparse window: %+v", ev)
	}
}

// TestDriftWarmup: nothing fires until the baseline ring is full.
func TestDriftWarmup(t *testing.T) {
	d := NewDetector(DriftConfig{Baseline: 5}, driftClasses)
	// Alternate wildly from the very first window: the first 5 windows
	// must stay quiet regardless.
	for w := 0; w < 5; w++ {
		fracs := []float64{0.80, 0.10, 0.06, 0.04}
		if w%2 == 1 {
			fracs = []float64{0.10, 0.80, 0.06, 0.04}
		}
		if ev, ok := d.Observe(mix(1500, fracs...)); ok {
			t.Fatalf("fired during warmup at window %d: %+v", w, ev)
		}
	}
}

package obs

import (
	"bytes"
	"log/slog"
	"math"
	"strings"
	"testing"
	"time"

	"vqprobe/internal/metrics"
)

// TestBurnRateAlertGold drives a scripted latency spike through a
// latency-form SLO on the virtual clock and pins the exact alert
// transition times and burn values — the deterministic alerting proof.
//
// Script: 10 observations/tick at 1s ticks. Ticks 1-30 all fast
// (0.05s), ticks 31-45 all slow (0.5s), ticks 46-80 fast again.
// Objective 0.9 with threshold 0.1s and burn limit 2 over 10s/30s
// windows means: fast burn = (bad in last 10s)/10, slow burn = (bad in
// last 30s)/30. Both cross 2 at t=36s; the fast window drains below 2
// at t=54s.
func TestBurnRateAlertGold(t *testing.T) {
	var logBuf bytes.Buffer
	reg := metrics.NewRegistry()
	slo := SLO{
		Name: "latency", Hist: "lat_seconds", ThresholdS: 0.1,
		Objective:  0.9,
		FastWindow: Duration(10 * time.Second),
		SlowWindow: Duration(30 * time.Second),
		// 1.9 rather than 2.0: the crossing samples sit at burn 2.0
		// exactly, and (bad/total)/(1-objective) carries float residue;
		// the 0.1 margin keeps the gold transitions residue-proof.
		Burn: 1.9,
	}
	p := New(Config{
		Registry: reg, Capacity: 128, SLOs: []SLO{slo},
		Logger: slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	h := reg.Histogram("lat_seconds", "latency", []float64{0.1, 1})

	type transition struct {
		sec   int
		state string
	}
	var got []transition
	last := "ok"
	for s := 1; s <= 80; s++ {
		v := 0.05
		if s >= 31 && s <= 45 {
			v = 0.5
		}
		for i := 0; i < 10; i++ {
			h.Observe(v)
		}
		tick(p, s)
		alerts := p.Alerts()
		if len(alerts) != 1 {
			t.Fatalf("tick %d: %d alerts, want 1", s, len(alerts))
		}
		a := alerts[0]
		if a.State != last {
			got = append(got, transition{s, a.State})
			last = a.State
		}
		switch s {
		case 36:
			if math.Abs(a.BurnFast-6) > 1e-9 || math.Abs(a.BurnSlow-2) > 1e-9 {
				t.Fatalf("tick 36: burn fast/slow = %v/%v, want 6/2", a.BurnFast, a.BurnSlow)
			}
		case 35:
			if a.State != "ok" {
				t.Fatalf("tick 35: firing early (slow burn %v)", a.BurnSlow)
			}
		}
	}

	want := []transition{{36, "firing"}, {54, "ok"}}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, got[i], want[i])
		}
	}

	out := logBuf.String()
	if !strings.Contains(out, "slo alert firing") || !strings.Contains(out, "slo alert resolved") {
		t.Fatalf("alert transitions not logged:\n%s", out)
	}

	// Firing state is visible on the healthz path.
	p2 := New(Config{Registry: metrics.NewRegistry(), SLOs: []SLO{slo}})
	if fa := p2.FiringAlerts(); fa == nil || len(fa) != 0 {
		t.Fatalf("FiringAlerts on quiet plane = %#v, want empty non-nil", fa)
	}
}

// TestBurnRateRatioSLO checks the counter-ratio objective form.
func TestBurnRateRatioSLO(t *testing.T) {
	reg := metrics.NewRegistry()
	slo := SLO{
		Name: "availability", Bad: "errs_total", Total: "reqs_total",
		Objective:  0.99,
		FastWindow: Duration(10 * time.Second),
		SlowWindow: Duration(20 * time.Second),
		Burn:       5,
	}
	p := New(Config{Registry: reg, Capacity: 64, SLOs: []SLO{slo}})
	reqs := reg.Counter("reqs_total", "n")
	errs := reg.Counter("errs_total", "n")

	// 100 req/s, 10% errors: error rate 0.1, burn 0.1/0.01 = 10 > 5 on
	// both windows once the slow window fills with errors.
	for s := 1; s <= 25; s++ {
		reqs.Add(100)
		if s > 5 {
			errs.Add(10)
		}
		tick(p, s)
	}
	a := p.Alerts()[0]
	if a.State != "firing" {
		t.Fatalf("ratio SLO not firing: %+v", a)
	}
	// Burn gauges are exported to the registry under the standard name.
	var buf bytes.Buffer
	reg.WriteText(&buf)
	if !strings.Contains(buf.String(), `vqserve_slo_burn_rate{slo="availability",window="fast"}`) {
		t.Fatalf("burn gauge missing from exposition:\n%s", buf.String())
	}
}

func TestSLOValidation(t *testing.T) {
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"ratio form", `[{"name":"a","bad":"b","total":"t","objective":0.99}]`, true},
		{"latency form", `[{"name":"a","hist":"h","threshold_s":0.25,"objective":0.999}]`, true},
		{"string windows", `[{"name":"a","bad":"b","total":"t","objective":0.9,"fast_window":"5m","slow_window":"1h"}]`, true},
		{"numeric window", `[{"name":"a","bad":"b","total":"t","objective":0.9,"fast_window":300000000000}]`, true},
		{"missing name", `[{"bad":"b","total":"t","objective":0.99}]`, false},
		{"both forms", `[{"name":"a","bad":"b","total":"t","hist":"h","threshold_s":1,"objective":0.99}]`, false},
		{"no form", `[{"name":"a","objective":0.99}]`, false},
		{"objective 1", `[{"name":"a","bad":"b","total":"t","objective":1}]`, false},
		{"hist no threshold", `[{"name":"a","hist":"h","objective":0.99}]`, false},
		{"unknown field", `[{"name":"a","bad":"b","total":"t","objective":0.99,"bogus":1}]`, false},
	}
	for _, tc := range cases {
		_, err := LoadSLOs(strings.NewReader(tc.in))
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	// Defaults fill in.
	slos, err := LoadSLOs(strings.NewReader(`[{"name":"a","bad":"b","total":"t","objective":0.9}]`))
	if err != nil {
		t.Fatal(err)
	}
	s := slos[0].withDefaults()
	if time.Duration(s.FastWindow) != 5*time.Minute || time.Duration(s.SlowWindow) != time.Hour || s.Burn != 14.4 {
		t.Fatalf("defaults = %+v", s)
	}
	for _, s := range DefaultServeSLOs() {
		if err := s.validate(); err != nil {
			t.Errorf("default SLO %q invalid: %v", s.Name, err)
		}
	}
}

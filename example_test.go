package vqprobe_test

import (
	"bytes"
	"fmt"

	"vqprobe"
)

// Example demonstrates the full loop: simulate lab sessions, train the
// diagnosis model, and classify a fresh session.
func Example() {
	train := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 120, Seed: 42})
	model, err := vqprobe.Train(train, vqprobe.DetectSeverity, vqprobe.AllVantagePoints)
	if err != nil {
		panic(err)
	}
	fresh := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 1, Seed: 7})
	d := model.DiagnoseSession(fresh[0])
	fmt.Println(d.Severity == "good" || d.Severity == "mild" || d.Severity == "severe")
	// Output: true
}

// ExampleModel_Diagnose shows diagnosing from a partial deployment: only
// the mobile device's record is available.
func ExampleModel_Diagnose() {
	sessions := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 120, Seed: 42})
	model, err := vqprobe.Train(sessions, vqprobe.LocateProblem, vqprobe.AllVantagePoints)
	if err != nil {
		panic(err)
	}
	d := model.Diagnose(map[string]map[string]float64{
		vqprobe.VPMobile: sessions[0].Records[vqprobe.VPMobile],
	})
	fmt.Println(len(d.Class) > 0)
	// Output: true
}

// ExampleModel_Save demonstrates model persistence round-tripping.
func ExampleModel_Save() {
	sessions := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 100, Seed: 42})
	model, err := vqprobe.Train(sessions, vqprobe.DetectProblem, []string{vqprobe.VPMobile})
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		panic(err)
	}
	back, err := vqprobe.LoadModel(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(back.Task)
	// Output: binary
}

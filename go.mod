module vqprobe

go 1.22

// Package vqprobe is the public API of the vqprobe library: a
// multi-vantage-point root cause analysis framework for mobile video
// streaming QoE, reproducing Dimopoulos et al., "Identifying the Root
// Cause of Video Streaming Issues on Mobile Devices" (CoNEXT 2015).
//
// The library covers the paper's whole system:
//
//   - a discrete-event testbed (network simulator, TCP, wireless channel,
//     device hardware, video server and player) standing in for the
//     paper's physical lab;
//   - vantage-point probes (mobile device, router/AP, content server)
//     that passively collect tstat-style transport metrics plus
//     OS/hardware and link-layer samples per video session;
//   - MOS-based QoE labeling, feature construction/selection, and a C4.5
//     classifier that detects a problem's existence, location and exact
//     root cause.
//
// Typical use:
//
//	sessions := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 1000, Seed: 1})
//	model, _ := vqprobe.Train(sessions, vqprobe.IdentifyRootCause, vqprobe.AllVantagePoints)
//	diag := model.Diagnose(sessions[0].Records)
//	fmt.Println(diag.Class, diag.Location, diag.Severity)
//
// The cmd/ tools (vqlab, vqtrain, vqdiag, vqreport) and the runnable
// examples under examples/ are thin layers over this package.
package vqprobe

import (
	"encoding/json"
	"fmt"
	"io"

	"vqprobe/internal/experiments"
	"vqprobe/internal/features"
	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/ml/c45"
	"vqprobe/internal/testbed"
)

// Task selects what the model should answer, mirroring the paper's
// three questions (Sections 5.1-5.3) plus the binary task used in the
// wild.
type Task string

// The diagnosis tasks.
const (
	DetectSeverity    Task = "severity" // good / mild / severe
	LocateProblem     Task = "location" // good / {mobile,lan,wan} x severity
	IdentifyRootCause Task = "exact"    // good / {7 faults} x severity
	DetectProblem     Task = "binary"   // good / problematic
)

// Vantage point names, as they appear in session records and feature
// prefixes.
const (
	VPMobile = "mobile"
	VPRouter = "router"
	VPServer = "server"
)

// AllVantagePoints is the full probe deployment.
var AllVantagePoints = []string{VPMobile, VPRouter, VPServer}

// Session is one video playback observation: per-vantage-point feature
// records plus the ground-truth label derived from the player's MOS.
type Session = testbed.SessionResult

// SimulationConfig sizes a dataset generation run.
type SimulationConfig struct {
	Sessions int   // number of video sessions (default 400)
	Seed     int64 // RNG seed; same seed, same dataset
	Workers  int   // parallel session simulations (default GOMAXPROCS)
}

func (c SimulationConfig) gen() testbed.GenConfig {
	return testbed.GenConfig{Sessions: c.Sessions, Seed: c.Seed, Workers: c.Workers}
}

// SimulateControlled generates a controlled-testbed dataset (the paper's
// Section 4 lab: induced faults over emulated DSL/cellular broadband).
func SimulateControlled(cfg SimulationConfig) []Session {
	return testbed.GenerateControlled(cfg.gen())
}

// SimulateRealWorld generates the Section 6.1 evaluation setting:
// corporate WiFi, induced fault windows, YouTube-vs-private server mix.
func SimulateRealWorld(cfg SimulationConfig) []Session {
	return testbed.GenerateRealWorldInduced(cfg.gen())
}

// SimulateWild generates the Section 6.2 in-the-wild setting: roaming
// users on arbitrary 3G/WiFi networks with naturally occurring faults.
func SimulateWild(cfg SimulationConfig) []Session {
	return testbed.GenerateWild(cfg.gen())
}

// labeler maps a task to its labeling function.
func labeler(task Task) (testbed.Labeler, error) {
	switch task {
	case DetectSeverity:
		return testbed.SeverityLabel, nil
	case LocateProblem:
		return testbed.LocationLabel, nil
	case IdentifyRootCause:
		return testbed.ExactLabel, nil
	case DetectProblem:
		return testbed.BinaryLabel, nil
	default:
		return nil, fmt.Errorf("vqprobe: unknown task %q", task)
	}
}

// Dataset converts sessions into a labeled ML dataset using the given
// vantage points; exposed for custom experimentation and CSV export.
func Dataset(sessions []Session, task Task, vps []string) (*ml.Dataset, error) {
	lb, err := labeler(task)
	if err != nil {
		return nil, err
	}
	return testbed.ToDataset(sessions, vps, lb), nil
}

// Diagnosis is the model's answer for one session.
type Diagnosis struct {
	// Class is the raw predicted class for the model's task (e.g.
	// "lan_cong_severe", "wan_mild", "problematic").
	Class string
	// Severity is the severity component of the class ("good", "mild",
	// "severe"), when the task encodes one.
	Severity string
	// Cause is the fault/location component without severity ("good",
	// "lan_cong", "wan", ...).
	Cause string
}

// Model is a trained diagnosis pipeline: feature construction scales,
// the FCBF-selected feature list, and a C4.5 tree.
type Model struct {
	Task     Task
	VPs      []string
	pipeline *experiments.Pipeline
}

// Train fits the paper's full pipeline (feature construction, FCBF
// selection, C4.5) on the given sessions.
func Train(sessions []Session, task Task, vps []string) (*Model, error) {
	d, err := Dataset(sessions, task, vps)
	if err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("vqprobe: no labeled instances to train on")
	}
	return &Model{Task: task, VPs: vps, pipeline: experiments.TrainPipeline(d)}, nil
}

// SelectedFeatures returns the features surviving selection, in rank
// order (the model's Table 1).
func (m *Model) SelectedFeatures() []string { return m.pipeline.Selected }

// TreeText renders the decision tree in J48's indented text form; the
// paper stresses that the model is interpretable, not a black box.
func (m *Model) TreeText() string { return m.pipeline.Tree.String() }

// Diagnose classifies one session's records, keyed by vantage point
// name. Vantage points missing from the map are treated as missing
// values, as in the paper's reduced-deployment scenarios.
func (m *Model) Diagnose(records map[string]map[string]float64) Diagnosis {
	fv := metrics.Vector{}
	for _, vp := range m.VPs {
		if rec, ok := records[vp]; ok {
			fv.Merge(vp, metrics.Vector(rec))
		}
	}
	cls := m.pipeline.PredictVector(fv)
	d := Diagnosis{Class: cls}
	switch cls {
	case "good":
		d.Severity, d.Cause = "good", "good"
	case "problematic":
		d.Severity, d.Cause = "problematic", "unknown"
	default:
		base, sev := splitSeverity(cls)
		d.Cause, d.Severity = base, sev
	}
	return d
}

// DiagnoseSession is a convenience wrapper over Diagnose.
func (m *Model) DiagnoseSession(s Session) Diagnosis {
	records := make(map[string]map[string]float64, len(s.Records))
	for vp, rec := range s.Records {
		records[vp] = rec
	}
	return m.Diagnose(records)
}

// Evaluate scores the model against labeled sessions and returns the
// confusion matrix.
func (m *Model) Evaluate(sessions []Session) (*ml.Confusion, error) {
	d, err := Dataset(sessions, m.Task, m.VPs)
	if err != nil {
		return nil, err
	}
	return m.pipeline.Evaluate(d), nil
}

func splitSeverity(cls string) (base, severity string) {
	for _, suffix := range []string{"_mild", "_severe"} {
		if len(cls) > len(suffix) && cls[len(cls)-len(suffix):] == suffix {
			return cls[:len(cls)-len(suffix)], suffix[1:]
		}
	}
	return cls, ""
}

// modelJSON is the serialized model format.
type modelJSON struct {
	Task     Task               `json:"task"`
	VPs      []string           `json:"vps"`
	Scales   map[string]float64 `json:"scales"`
	Selected []string           `json:"selected"`
	Tree     *c45.Tree          `json:"tree"`
}

// Save serializes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(modelJSON{
		Task:     m.Task,
		VPs:      m.VPs,
		Scales:   m.pipeline.Norm.Scales(),
		Selected: m.pipeline.Selected,
		Tree:     m.pipeline.Tree,
	})
}

// LoadModel restores a model saved with Save.
func LoadModel(r io.Reader) (*Model, error) {
	var j modelJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("vqprobe: decoding model: %w", err)
	}
	if j.Tree == nil {
		return nil, fmt.Errorf("vqprobe: model has no tree")
	}
	return &Model{
		Task: j.Task,
		VPs:  j.VPs,
		pipeline: &experiments.Pipeline{
			Norm:     features.NormalizerFromScales(j.Scales),
			Selected: j.Selected,
			Tree:     j.Tree,
		},
	}, nil
}

// TrainFromCSV fits the pipeline on a dataset previously exported with
// WriteCSV (cmd/vqlab). The task and vantage points are recorded in the
// model for bookkeeping; the CSV's class column defines the labels.
func TrainFromCSV(r io.Reader, task Task, vps []string) (*Model, error) {
	return TrainFromCSVWorkers(r, task, vps, 0)
}

// TrainFromCSVWorkers is TrainFromCSV with an explicit bound on
// training parallelism (zero selects GOMAXPROCS, 1 forces a serial
// fit). The fitted model is byte-identical for any worker count.
func TrainFromCSVWorkers(r io.Reader, task Task, vps []string, workers int) (*Model, error) {
	d, err := ml.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("vqprobe: empty training dataset")
	}
	return &Model{Task: task, VPs: vps, pipeline: experiments.TrainPipelineWorkers(d, workers)}, nil
}

// EvaluateCSV scores the model against a labeled CSV dataset.
func (m *Model) EvaluateCSV(r io.Reader) (*ml.Confusion, error) {
	d, err := ml.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return m.pipeline.Evaluate(d), nil
}

// PredictVector classifies one raw feature vector (keys as produced by
// Dataset / the CSV header).
func (m *Model) PredictVector(fv map[string]float64) string {
	return m.pipeline.PredictVector(metrics.Vector(fv))
}

// FeatureRanking returns, for each class the model predicts, the
// features most responsible for reaching leaves of that class — the
// per-problem ranking of the paper's Table 4. Scores are path-coverage
// weights; higher means more influential.
func (m *Model) FeatureRanking() map[string][]FeatureScore {
	out := map[string][]FeatureScore{}
	for cls, scores := range m.pipeline.Tree.PerClassImportance() {
		conv := make([]FeatureScore, len(scores))
		for i, s := range scores {
			conv[i] = FeatureScore{Feature: s.Feature, Score: s.Score}
		}
		out[cls] = conv
	}
	return out
}

// FeatureScore pairs a feature name with an importance weight.
type FeatureScore struct {
	Feature string
	Score   float64
}

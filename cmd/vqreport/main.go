// Command vqreport regenerates the paper's tables and figures from
// freshly simulated datasets.
//
// Usage:
//
//	vqreport [-exp all|<id>[,<id>...]] [-controlled N] [-realworld N] [-wild N]
//	         [-seed N] [-paperscale] [-list]
//
// With -paperscale the dataset sizes match the paper (3919 controlled,
// 2619 real-world, 3495 wild sessions); expect a multi-minute run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vqprobe/internal/buildinfo"
	"vqprobe/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id(s), comma separated, or 'all'")
		controlled = flag.Int("controlled", 0, "controlled sessions (0 = default 1200)")
		realworld  = flag.Int("realworld", 0, "real-world sessions (0 = default 800)")
		wild       = flag.Int("wild", 0, "wild sessions (0 = default 1000)")
		seed       = flag.Int64("seed", 1, "master RNG seed")
		paperScale = flag.Bool("paperscale", false, "use the paper's dataset sizes (3919/2619/3495)")
		list       = flag.Bool("list", false, "list available experiments and exit")
		markdown   = flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "vqreport")
		return
	}

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-14s %s (needs: %s)\n", e.ID, e.What, e.Needs)
		}
		return
	}

	cfg := experiments.Config{
		ControlledSessions: *controlled,
		RealWorldSessions:  *realworld,
		WildSessions:       *wild,
		Seed:               *seed,
	}
	if *paperScale {
		cfg = experiments.PaperScale()
		cfg.Seed = *seed
	}
	suite := experiments.NewSuite(cfg)

	var entries []experiments.Entry
	if *exp == "all" {
		entries = experiments.Registry
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.Find(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			entries = append(entries, e)
		}
	}

	start := time.Now()
	for _, e := range entries {
		t0 := time.Now()
		tbl := e.Run(suite)
		if *markdown {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl)
		}
		fmt.Printf("-- %s finished in %v --\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("report complete in %v (controlled=%d realworld=%d wild=%d seed=%d)\n",
		time.Since(start).Round(time.Second),
		suite.Config().ControlledSessions, suite.Config().RealWorldSessions,
		suite.Config().WildSessions, suite.Config().Seed)
}

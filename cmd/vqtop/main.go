// Command vqtop is a terminal dashboard for a running vqprobe daemon:
// it polls the obs telemetry plane and renders live rates, sparklines,
// windowed latency quantiles and firing SLO alerts.
//
// Two sources:
//
//	-source vars     poll /vars (a vqserve with -obs, or anything
//	                 serving obs snapshots) — full ring history per poll
//	-source metrics  poll a bare /metrics Prometheus exposition and run
//	                 a local obs plane over it — works against any
//	                 vqprobe daemon, history accumulates client-side
//
// -once prints a single frame and exits (snapshot mode, CI-friendly);
// otherwise the screen redraws every -interval.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"vqprobe/internal/buildinfo"
	"vqprobe/internal/obs"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:8700", "daemon base URL")
		source   = flag.String("source", "vars", "telemetry source: vars or metrics")
		interval = flag.Duration("interval", 2*time.Second, "poll/redraw interval")
		once     = flag.Bool("once", false, "print one frame and exit")
		width    = flag.Int("width", 32, "sparkline width in cells")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "vqtop")
		return
	}
	if *source != "vars" && *source != "metrics" {
		fmt.Fprintln(os.Stderr, "vqtop: -source must be vars or metrics")
		os.Exit(2)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	// metrics mode: a local plane accumulates scrape history client-side.
	local := obs.New(obs.Config{Capacity: 360})
	start := time.Now()

	for {
		snap, err := fetch(client, *url, *source, local, time.Since(start))
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqtop: %v\n", err)
			if *once {
				os.Exit(1)
			}
		} else {
			render(os.Stdout, *url, snap, *width)
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// fetch produces the next snapshot from the configured source.
func fetch(client *http.Client, base, source string, local *obs.Plane, now time.Duration) (*obs.Snapshot, error) {
	if source == "vars" {
		body, err := get(client, base+"/vars")
		if err != nil {
			return nil, err
		}
		return obs.DecodeSnapshot(body)
	}
	body, err := get(client, base+"/metrics")
	if err != nil {
		return nil, err
	}
	series, err := obs.ParsePromText(strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	local.Ingest(now, series)
	return local.Snapshot(), nil
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 32<<20))
}

// render draws one frame: header, alerts, then counters, gauges and
// histograms in sorted-name order (the snapshot is already sorted).
func render(w io.Writer, base string, s *obs.Snapshot, width int) {
	fmt.Fprintf(w, "vqtop  %s  t=%.1fs  %d series\n", base, float64(s.NowNS)/1e9, len(s.Series))
	renderAlerts(w, s.Alerts)

	var counters, gauges, hists []obs.Series
	for _, sr := range s.Series {
		switch sr.Kind {
		case "counter":
			counters = append(counters, sr)
		case "gauge":
			gauges = append(gauges, sr)
		case "histogram":
			hists = append(hists, sr)
		}
	}
	nameW := 12
	for _, sr := range s.Series {
		if len(sr.Name) > nameW {
			nameW = len(sr.Name)
		}
	}
	if nameW > 56 {
		nameW = 56
	}

	if len(counters) > 0 {
		fmt.Fprintf(w, "\n%-*s %12s  %s\n", nameW, "COUNTERS", "rate/s", "trend")
		for _, sr := range counters {
			fmt.Fprintf(w, "%-*s %12s  %s\n", nameW, clip(sr.Name, nameW),
				num(lastOf(sr.Rate)), spark(sr.Rate, width))
		}
	}
	if len(gauges) > 0 {
		fmt.Fprintf(w, "\n%-*s %12s  %s\n", nameW, "GAUGES", "value", "trend")
		for _, sr := range gauges {
			fmt.Fprintf(w, "%-*s %12s  %s\n", nameW, clip(sr.Name, nameW),
				num(lastOf(sr.V)), spark(sr.V, width))
		}
	}
	if len(hists) > 0 {
		fmt.Fprintf(w, "\n%-*s %12s %10s %10s %10s  %s\n", nameW, "HISTOGRAMS",
			"obs/s", "p50", "p95", "p99", "p99 trend")
		for _, sr := range hists {
			fmt.Fprintf(w, "%-*s %12s %10s %10s %10s  %s\n", nameW, clip(sr.Name, nameW),
				num(lastOf(sr.Rate)), num(lastOf(sr.P50)), num(lastOf(sr.P95)),
				num(lastOf(sr.P99)), spark(sr.P99, width))
		}
	}
}

func renderAlerts(w io.Writer, alerts []obs.Alert) {
	if len(alerts) == 0 {
		return
	}
	sorted := append([]obs.Alert(nil), alerts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].State != sorted[j].State {
			return sorted[i].State == "firing" // firing first
		}
		return sorted[i].SLO < sorted[j].SLO
	})
	fmt.Fprintf(w, "slo: ")
	parts := make([]string, 0, len(sorted))
	for _, a := range sorted {
		state := "ok"
		if a.State == "firing" {
			state = "FIRING"
		}
		parts = append(parts, fmt.Sprintf("%s %s burn=%s/%s",
			a.SLO, state, num(a.BurnFast), num(a.BurnSlow)))
	}
	fmt.Fprintln(w, strings.Join(parts, "  |  "))
}

func lastOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return v[len(v)-1]
}

// num renders a value compactly: SI-ish for large, fixed for small.
func num(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	case v >= 0.001:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

func clip(s string, w int) string {
	if len(s) <= w {
		return s
	}
	return s[:w-1] + "…"
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// spark renders the trailing values as a unicode sparkline, scaled to
// the visible min..max (an all-equal series draws flat at the bottom).
func spark(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if span > 0 {
			i = int((v - lo) / span * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[i])
	}
	return b.String()
}

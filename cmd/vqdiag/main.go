// Command vqdiag classifies session records with a trained model: the
// deployable diagnostic tool of the reproduction.
//
// Usage:
//
//	vqdiag -model model.json -in sessions.csv [-parallel N] [-confusion]
//	       [-strict] [-explain] [-log-format text|json]
//
// -model accepts vqtrain's JSON or the binary snapshot written by
// vqtrain -emit-snapshot (loaded in one sequential read, tree or
// forest). -explain requires a tree model: an ensemble vote has no
// single decision path.
//
// The input CSV uses the same format vqlab writes and is streamed row
// by row (it never has to fit in memory); if its class column is
// non-empty the tool also reports accuracy (and, with -confusion, the
// full per-class precision/recall breakdown). The CSV header is
// validated against the model's feature schema before any row is
// classified: sharing no features with the model is a hard error, and
// partially missing features warn (or fail, with -strict). With
// -parallel > 1 rows are classified concurrently through the serving
// engine; output order stays identical to the input. With -explain,
// each prediction is followed by the decision rule that produced it
// ("root cause = X because f=v > t ∧ ..."). Diagnostics go to stderr
// through log/slog; -log-format json emits them as JSON objects.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"vqprobe"
	"vqprobe/internal/buildinfo"
	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/serve"
)

// chunkRows bounds memory with -parallel: rows are classified and
// printed in chunks of this size.
const chunkRows = 512

func fatalf(format string, args ...any) {
	slog.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}

func main() {
	var (
		modelPath = flag.String("model", "model.json", "trained model: vqtrain JSON or binary snapshot")
		in        = flag.String("in", "", "sessions CSV to diagnose (required)")
		confusion = flag.Bool("confusion", false, "print the full confusion summary")
		quiet     = flag.Bool("quiet", false, "suppress per-session lines")
		parallel  = flag.Int("parallel", 1, "parallel classification workers (0 = NumCPU)")
		strict    = flag.Bool("strict", false, "fail if any model feature is absent from the CSV header")
		explain   = flag.Bool("explain", false, "print the decision rule behind each prediction")
		logFmt    = flag.String("log-format", "text", "diagnostic log format: text or json")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "vqdiag")
		return
	}
	switch *logFmt {
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	case "text", "":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	default:
		fmt.Fprintf(os.Stderr, "vqdiag: unknown -log-format %q (want text or json)\n", *logFmt)
		os.Exit(2)
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "vqdiag: -in is required")
		os.Exit(2)
	}

	cm, err := vqprobe.LoadServingModel(*modelPath)
	if err != nil {
		fatalf("%v", err)
	}

	df, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	defer df.Close()
	stream, err := ml.NewCSVStream(df)
	if err != nil {
		fatalf("%s: %v", *in, err)
	}
	validateSchema(cm.Schema(), stream.Features(), *strict)

	// parallel == 1 classifies inline; anything else goes through the
	// sharded serving engine in bounded chunks, preserving row order.
	var eng *vqprobe.Engine
	if *parallel != 1 {
		eng = vqprobe.NewEngine(cm, vqprobe.EngineConfig{Shards: *parallel})
		defer eng.Close()
	}

	conf := ml.NewConfusion(nil)
	rows, labeled, failed := 0, 0, 0
	reqs := make([]vqprobe.ServeRequest, 0, chunkRows)
	classes := make([]string, 0, chunkRows)

	flush := func() {
		var results []vqprobe.ServeResult
		if eng != nil {
			results = eng.DiagnoseBatch(reqs)
		} else {
			results = make([]vqprobe.ServeResult, len(reqs))
			for i := range reqs {
				// Mirror the engine's schema validation: a literal "NaN"
				// or "Inf" cell would otherwise be indistinguishable from
				// a missing value and silently fall through tree branches.
				if err := serve.ValidateFeatures(reqs[i].Features); err != nil {
					results[i] = vqprobe.ServeResult{ID: reqs[i].ID, Err: err.Error()}
					continue
				}
				if *explain {
					results[i] = cm.DiagnoseExplain(metrics.Vector(reqs[i].Features))
				} else {
					results[i] = cm.Diagnose(metrics.Vector(reqs[i].Features))
				}
			}
		}
		for i, res := range results {
			idx := rows - len(reqs) + i
			if res.Err != "" {
				failed++
				if !*quiet {
					fmt.Printf("session %4d: error=%s\n", idx, res.Err)
				}
				continue
			}
			if !*quiet {
				fmt.Printf("session %4d: predicted=%-20s actual=%s\n", idx, res.Class, classes[i])
				if *explain && res.Rule != "" {
					fmt.Printf("              %s\n", res.Rule)
				}
			}
			if classes[i] != "" {
				conf.Add(classes[i], res.Class)
				labeled++
			}
		}
		reqs = reqs[:0]
		classes = classes[:0]
	}

	for {
		fv, class, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatalf("%s: %v", *in, err)
		}
		reqs = append(reqs, vqprobe.ServeRequest{ID: fmt.Sprint(rows), Features: fv, Explain: *explain})
		classes = append(classes, class)
		rows++
		if len(reqs) == chunkRows {
			flush()
		}
	}
	flush()

	if rows == 0 {
		fatalf("%s has no data rows", *in)
	}
	if failed == rows {
		fatalf("all %d rows failed to classify", rows)
	}
	if labeled > 0 {
		fmt.Printf("accuracy: %.1f%% over %d labeled sessions\n", conf.Accuracy()*100, labeled)
		if *confusion {
			fmt.Print(conf.String())
		}
	}
}

// validateSchema checks the CSV header against the model's feature
// schema before any row is classified: zero overlap means the wrong
// file and is always fatal; a partial mismatch is treated as missing
// values (the paper's reduced-deployment scenarios) unless -strict.
func validateSchema(schema, header []string, strict bool) {
	have := make(map[string]bool, len(header))
	for _, f := range header {
		have[f] = true
	}
	var missing []string
	for _, f := range schema {
		if !have[f] {
			missing = append(missing, f)
		}
	}
	if len(missing) == 0 {
		return
	}
	if len(missing) == len(schema) {
		fatalf("input shares no features with the model (model expects %d features, e.g. %s); wrong CSV or wrong model?",
			len(schema), exampleList(schema))
	}
	if strict {
		fatalf("%d of %d model features absent from input: %s", len(missing), len(schema), exampleList(missing))
	}
	slog.Warn("model features absent from input (treated as missing values)",
		"missing", len(missing), "schema", len(schema), "examples", exampleList(missing))
}

// exampleList renders up to four names of a feature list.
func exampleList(names []string) string {
	const max = 4
	s := ""
	for i, n := range names {
		if i == max {
			return s + fmt.Sprintf(", … (%d more)", len(names)-max)
		}
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// Command vqdiag classifies session records with a trained model: the
// deployable diagnostic tool of the reproduction.
//
// Usage:
//
//	vqdiag -model model.json -in sessions.csv [-confusion]
//
// The input CSV uses the same format vqlab writes; if its class column
// is non-empty the tool also reports accuracy (and, with -confusion,
// the full per-class precision/recall breakdown).
package main

import (
	"flag"
	"fmt"
	"os"

	"vqprobe"
	"vqprobe/internal/ml"
)

func main() {
	var (
		modelPath = flag.String("model", "model.json", "trained model JSON")
		in        = flag.String("in", "", "sessions CSV to diagnose (required)")
		confusion = flag.Bool("confusion", false, "print the full confusion summary")
		quiet     = flag.Bool("quiet", false, "suppress per-session lines")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "vqdiag: -in is required")
		os.Exit(2)
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	model, err := vqprobe.LoadModel(mf)
	mf.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	df, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := ml.ReadCSV(df)
	df.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	conf := ml.NewConfusion(nil)
	labeled := 0
	for i, inst := range data.Instances {
		pred := model.PredictVector(inst.Features)
		if !*quiet {
			fmt.Printf("session %4d: predicted=%-20s actual=%s\n", i, pred, inst.Class)
		}
		if inst.Class != "" {
			conf.Add(inst.Class, pred)
			labeled++
		}
	}
	if labeled > 0 {
		fmt.Printf("accuracy: %.1f%% over %d labeled sessions\n", conf.Accuracy()*100, labeled)
		if *confusion {
			fmt.Print(conf.String())
		}
	}
}

// Command vqlab generates labeled datasets from the simulated testbed
// and writes them as CSV for vqtrain/vqdiag or external tools.
//
// Usage:
//
//	vqlab -setting controlled|realworld|wild [-sessions N] [-seed N]
//	      -task severity|location|exact|binary
//	      [-vps mobile,router,server] [-out dataset.csv] [-stats]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"vqprobe"
	"vqprobe/internal/buildinfo"
)

func main() {
	var (
		setting  = flag.String("setting", "controlled", "dataset kind: controlled, realworld or wild")
		sessions = flag.Int("sessions", 400, "number of video sessions to simulate")
		seed     = flag.Int64("seed", 1, "RNG seed")
		task     = flag.String("task", "exact", "label task: severity, location, exact or binary")
		vps      = flag.String("vps", "mobile,router,server", "vantage points to include, comma separated")
		out      = flag.String("out", "", "output path (default stdout)")
		format   = flag.String("format", "csv", "output format: csv, arff (Weka) or json (raw sessions)")
		stats    = flag.Bool("stats", false, "print label distribution to stderr")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "vqlab")
		return
	}

	cfg := vqprobe.SimulationConfig{Sessions: *sessions, Seed: *seed}
	var results []vqprobe.Session
	switch *setting {
	case "controlled":
		results = vqprobe.SimulateControlled(cfg)
	case "realworld":
		results = vqprobe.SimulateRealWorld(cfg)
	case "wild":
		results = vqprobe.SimulateWild(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown setting %q\n", *setting)
		os.Exit(2)
	}

	vpList := strings.Split(*vps, ",")
	d, err := vqprobe.Dataset(results, vqprobe.Task(*task), vpList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *stats {
		counts := d.ClassCounts()
		classes := make([]string, 0, len(counts))
		for c := range counts {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Fprintf(os.Stderr, "%d instances, %d features\n", d.Len(), len(d.Features()))
		for _, c := range classes {
			fmt.Fprintf(os.Stderr, "  %-22s %d\n", c, counts[c])
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		err = d.WriteCSV(w)
	case "arff":
		err = d.WriteARFF(w, "vqprobe-"+*setting+"-"+*task)
	case "json":
		// Raw sessions: ground truth, labels, context, timeline and all
		// per-VP records — everything an external analysis could want.
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		err = enc.Encode(results)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Command vqtrace records a traced simulated video session and writes
// it out as a Chrome trace_event JSON file: open the result at
// https://ui.perfetto.dev (or chrome://tracing) to see the session as
// nested spans — the download and startup phases, every stall, and the
// instant events the network and TCP layers emitted (enqueues, queue
// drops, fast retransmits, RTOs) on their own tracks, all on the
// simulation's virtual clock.
//
// Usage:
//
//	vqtrace [-fault lan_cong] [-intensity 0.7] [-seed 1] [-wan dsl|mobile]
//	        [-bitrate 1.2e6] [-duration 40s] [-buf 65536]
//	        [-o session.trace.json] [-format chrome|ndjson] [-summary]
//
// -format ndjson emits one JSON object per event instead (the same
// records /debug/trace?format=ndjson serves), for ad-hoc filtering
// with line-oriented tools.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"vqprobe/internal/buildinfo"
	"vqprobe/internal/faults"
	"vqprobe/internal/qoe"
	"vqprobe/internal/testbed"
	"vqprobe/internal/trace"
	"vqprobe/internal/video"
)

func main() {
	var (
		faultName = flag.String("fault", "lan_cong", "fault to induce (or 'none')")
		intensity = flag.Float64("intensity", 0.7, "fault intensity in [0,1]")
		seed      = flag.Int64("seed", 1, "RNG seed")
		wan       = flag.String("wan", "dsl", "WAN profile: dsl or mobile")
		bitrate   = flag.Float64("bitrate", 1.2e6, "clip bitrate, bits/s")
		duration  = flag.Duration("duration", 40*time.Second, "clip duration")
		bufSize   = flag.Int("buf", 1<<16, "span ring-buffer capacity (oldest events drop beyond it)")
		out       = flag.String("o", "session.trace.json", "output file ('-' = stdout)")
		format    = flag.String("format", "chrome", "output format: chrome (trace_event JSON) or ndjson")
		summary   = flag.Bool("summary", true, "print an event summary to stderr")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "vqtrace")
		return
	}

	if *format != "chrome" && *format != "ndjson" {
		fmt.Fprintf(os.Stderr, "vqtrace: unknown -format %q (want chrome or ndjson)\n", *format)
		os.Exit(2)
	}
	fault := qoe.FaultNone
	if *faultName != "none" {
		found := false
		for _, f := range qoe.Faults {
			if f.String() == *faultName {
				fault, found = f, true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "vqtrace: unknown fault %q\n", *faultName)
			os.Exit(2)
		}
	}
	wanProfile := testbed.WANDSL
	if *wan == "mobile" {
		wanProfile = testbed.WANMobile
	}

	res := testbed.RunSession(testbed.SessionConfig{
		Opts: testbed.Options{
			Seed: *seed, WAN: wanProfile,
			BackgroundScale: 0.4, ServerLoadMean: 0.1,
			InstrumentRouter: true, InstrumentServer: true,
		},
		Spec:     faults.Spec{Fault: fault, Intensity: *intensity},
		Clip:     video.Clip{ID: 1, Quality: video.SD, Bitrate: *bitrate, Duration: *duration, FPS: 30},
		TraceBuf: *bufSize,
	})

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqtrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	if *format == "ndjson" {
		err = res.Trace.WriteNDJSON(w)
	} else {
		err = res.Trace.WriteChromeTrace(w)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqtrace: writing trace: %v\n", err)
		os.Exit(1)
	}

	if *summary {
		events := res.Trace.Events()
		byTrack := map[string]int{}
		spans := 0
		for _, ev := range events {
			byTrack[ev.Track]++
			if ev.Kind == trace.KindSpan {
				spans++
			}
		}
		tracks := make([]string, 0, len(byTrack))
		for t := range byTrack {
			tracks = append(tracks, t)
		}
		sort.Strings(tracks)
		fmt.Fprintf(os.Stderr, "vqtrace: fault=%s intensity=%.2f MOS=%.2f (%s)\n",
			fault, *intensity, res.MOS, res.Label.Severity)
		fmt.Fprintf(os.Stderr, "vqtrace: %d events (%d spans", len(events), spans)
		if d := res.Trace.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, ", %d oldest dropped — raise -buf", d)
		}
		fmt.Fprint(os.Stderr, ") on tracks:")
		for _, t := range tracks {
			fmt.Fprintf(os.Stderr, " %s=%d", t, byTrack[t])
		}
		fmt.Fprintln(os.Stderr)
		if *out != "-" && *format == "chrome" {
			fmt.Fprintf(os.Stderr, "vqtrace: open %s at https://ui.perfetto.dev to explore the session\n", *out)
		}
	}
}

// Command vqsim runs a single video session in the simulated testbed
// with a chosen fault and prints what happened: the playback timeline,
// the QoE summary and MOS, and the headline metrics each vantage point
// collected. With -model it also diagnoses the session, making the whole
// probe-to-verdict pipeline visible for one concrete case.
//
// Usage:
//
//	vqsim [-fault none|wan_cong|wan_shaped|lan_cong|lan_shaped|mobile_load|low_rssi|wifi_interf]
//	      [-intensity 0.7] [-seed 1] [-wan dsl|mobile] [-bitrate 1.2e6]
//	      [-duration 40s] [-model model.json] [-sessions 1]
//
// With -sessions N (N > 1) the same scenario is repeated N times with
// seeds seed..seed+N-1 through a pooled testbed.Runner — the same cheap
// path vqfleet's full-fidelity mode uses — printing one line per
// session and an aggregate instead of the single-session deep dive.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"vqprobe"
	"vqprobe/internal/buildinfo"
	"vqprobe/internal/faults"
	"vqprobe/internal/qoe"
	"vqprobe/internal/testbed"
	"vqprobe/internal/video"
)

func main() {
	var (
		faultName = flag.String("fault", "lan_cong", "fault to induce (or 'none')")
		intensity = flag.Float64("intensity", 0.7, "fault intensity in [0,1]")
		seed      = flag.Int64("seed", 1, "RNG seed")
		wan       = flag.String("wan", "dsl", "WAN profile: dsl or mobile")
		bitrate   = flag.Float64("bitrate", 1.2e6, "clip bitrate, bits/s")
		duration  = flag.Duration("duration", 40*time.Second, "clip duration")
		modelPath = flag.String("model", "", "optional trained model to diagnose the session")
		sessions  = flag.Int("sessions", 1, "repeat the session N times (seeds seed..seed+N-1) via a pooled runner")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "vqsim")
		return
	}

	fault := qoe.FaultNone
	if *faultName != "none" {
		found := false
		for _, f := range qoe.Faults {
			if f.String() == *faultName {
				fault, found = f, true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown fault %q\n", *faultName)
			os.Exit(2)
		}
	}
	wanProfile := testbed.WANDSL
	if *wan == "mobile" {
		wanProfile = testbed.WANMobile
	}

	cfg := testbed.SessionConfig{
		Opts: testbed.Options{
			Seed: *seed, WAN: wanProfile,
			BackgroundScale: 0.4, ServerLoadMean: 0.1,
			InstrumentRouter: true, InstrumentServer: true,
		},
		Spec: faults.Spec{Fault: fault, Intensity: *intensity},
		Clip: video.Clip{ID: 1, Quality: video.SD, Bitrate: *bitrate, Duration: *duration, FPS: 30},
	}

	if *sessions > 1 {
		runRepeated(cfg, *sessions, fault, *intensity, wanProfile)
		return
	}

	res := testbed.RunSession(cfg)

	fmt.Printf("session: fault=%s intensity=%.2f wan=%s clip=%.1fMb/s %v\n\n",
		fault, *intensity, wanProfile, *bitrate/1e6, *duration)

	fmt.Println("timeline:")
	for _, e := range res.Timeline {
		fmt.Printf("  %8.1fs  %-11s %s\n", e.At.Seconds(), e.Kind, e.Detail)
	}

	r := res.Report
	fmt.Printf("\nQoE: MOS=%.2f (%s)  startup=%v  stalls=%d (%v total)  skips=%d  completed=%v\n",
		res.MOS, res.Label.Severity, r.StartupDelay.Round(time.Millisecond),
		r.Stalls, r.StallTime.Round(time.Millisecond), r.SkippedFrames, r.Completed)
	if r.Failed {
		fmt.Printf("FAILED: %s\n", r.FailReason)
	}

	headline := []string{
		"tcp_s2c_throughput_bps", "tcp_s2c_rtt_ms_avg", "tcp_s2c_retrans_pkts",
		"tcp_s2c_ooo_pkts", "tcp_first_data_delay_s", "hw_cpu_pct_avg",
		"wlan0_nic_rssi_dbm_avg", "wlan0_nic_retries",
	}
	fmt.Println("\nvantage point headline metrics:")
	vps := make([]string, 0, len(res.Records))
	for vp := range res.Records {
		vps = append(vps, vp)
	}
	sort.Strings(vps)
	for _, vp := range vps {
		rec := res.Records[vp]
		fmt.Printf("  %s:\n", vp)
		for _, k := range headline {
			if v, ok := rec[k]; ok {
				fmt.Printf("    %-26s %12.2f\n", k, v)
			}
		}
	}

	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		model, err := vqprobe.LoadModel(mf)
		mf.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		d := model.DiagnoseSession(res)
		fmt.Printf("\ndiagnosis (%s model): %s  [truth: %s]\n", model.Task, d.Class, res.Label.ExactClass())
	}
}

// runRepeated replays the scenario n times with consecutive seeds
// through one pooled testbed.Runner, reusing per-session buffers
// instead of reallocating them — each result is consumed before the
// next Run, as the Runner aliasing contract requires.
func runRepeated(cfg testbed.SessionConfig, n int, fault qoe.Fault, intensity float64, wan testbed.WANProfile) {
	fmt.Printf("sessions: %d x fault=%s intensity=%.2f wan=%s clip=%.1fMb/s %v\n\n",
		n, fault, intensity, wan, cfg.Clip.Bitrate/1e6, cfg.Clip.Duration)

	runner := testbed.NewRunner()
	var (
		mosSum               float64
		startupSum, stallSum time.Duration
		severe, mild, failed int
	)
	base := cfg.Opts.Seed
	for i := 0; i < n; i++ {
		cfg.Opts.Seed = base + int64(i)
		res := runner.Run(cfg)
		r := res.Report
		mosSum += res.MOS
		startupSum += r.StartupDelay
		stallSum += r.StallTime
		switch res.Label.Severity {
		case qoe.Severe:
			severe++
		case qoe.Mild:
			mild++
		}
		status := "ok"
		if r.Failed {
			failed++
			status = "FAILED: " + r.FailReason
		}
		fmt.Printf("  seed=%-6d mos=%.2f (%-6s) startup=%-8v stalls=%-3d stall=%-8v %s\n",
			cfg.Opts.Seed, res.MOS, res.Label.Severity,
			r.StartupDelay.Round(time.Millisecond), r.Stalls,
			r.StallTime.Round(time.Millisecond), status)
	}
	fn := float64(n)
	fmt.Printf("\naggregate: mean_mos=%.2f mean_startup=%v mean_stall=%v severe=%d mild=%d failed=%d\n",
		mosSum/fn, (startupSum / time.Duration(n)).Round(time.Millisecond),
		(stallSum / time.Duration(n)).Round(time.Millisecond), severe, mild, failed)
}

// Command vqroute is the fleet-mode router: one daemon fronting N
// vqserve replicas, spreading /diagnose NDJSON traffic with a
// consistent-hash ring (sticky per session ID) plus a least-loaded
// fallback, ejecting replicas that fail health probes, holding traffic
// shifts and rollouts when a replica reports degraded, coordinating
// staged model rollouts (canary → verify hash → fan out), and
// propagating backpressure as 429 + Retry-After when the whole fleet
// is saturated.
//
// Usage:
//
//	vqroute -replicas http://127.0.0.1:8701,http://127.0.0.1:8702
//	        [-addr :8710] [-health-every 2s] [-eject-after 3]
//	        [-max-inflight 1024] [-retry-after 1s] [-vnodes 64]
//	        [-log-format text|json] [-obs 2s] [-obs-cap 360]
//	        [-drain 10s]
//
// Endpoints:
//
//	POST /diagnose    NDJSON batch, proxied across the fleet, answers
//	                  merged back in input order
//	GET  /healthz     router + per-replica state summary
//	GET  /metrics     Prometheus text exposition (vqroute_* series)
//	GET  /vars        obs telemetry snapshot of the router registry
//	GET  /dashboard   self-contained HTML dashboard polling /vars
//	POST /-/rollout   staged model rollout (?hash= pins the expected
//	                  snapshot hash); 200 complete, 409 held
//
// Topology, hashing, the rollout protocol and the shedding tiers are
// documented in docs/ROUTING.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"vqprobe/internal/buildinfo"
	"vqprobe/internal/metrics"
	"vqprobe/internal/obs"
	"vqprobe/internal/route"
)

// newLogger builds the process logger: text (the default, human
// friendly) or json (one object per line, for log shippers).
func newLogger(format string) *slog.Logger {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil))
	default:
		fmt.Fprintf(os.Stderr, "vqroute: unknown -log-format %q (want text or json)\n", format)
		os.Exit(2)
		return nil
	}
}

func main() {
	var (
		replicas    = flag.String("replicas", "", "comma-separated vqserve base URLs (required)")
		addr        = flag.String("addr", ":8710", "HTTP listen address")
		healthEvery = flag.Duration("health-every", 2*time.Second, "replica /healthz poll interval")
		ejectAfter  = flag.Int("eject-after", 3, "consecutive probe failures before a replica is ejected")
		maxInflight = flag.Int("max-inflight", 1024, "max outstanding proxied rows per replica before shedding")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses and shed rows")
		vnodes      = flag.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
		logFmt      = flag.String("log-format", "text", "log output format: text or json")
		obsEvery    = flag.Duration("obs", 2*time.Second, "telemetry plane sampling interval; 0 disables /vars and /dashboard")
		obsCap      = flag.Int("obs-cap", 360, "telemetry ring capacity in samples per series")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests on SIGTERM")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "vqroute")
		return
	}
	logger := newLogger(*logFmt)
	slog.SetDefault(logger)

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "vqroute: -replicas is required (comma-separated vqserve base URLs)")
		os.Exit(2)
	}

	reg := metrics.NewRegistry()
	rt, err := route.New(route.Config{
		Replicas:    urls,
		Registry:    reg,
		Logger:      logger,
		Clock:       time.Now,
		VNodes:      *vnodes,
		EjectAfter:  *ejectAfter,
		MaxInflight: *maxInflight,
		RetryAfter:  *retryAfter,
	})
	if err != nil {
		logger.Error("router construction failed", "err", err)
		os.Exit(1)
	}
	logger.Info("routing",
		"replicas", len(urls), "addr", *addr, "vnodes", *vnodes,
		"eject_after", *ejectAfter, "max_inflight", *maxInflight,
		"health_every", *healthEvery)

	// The health loop is the only periodic work: the route package is
	// clock-free by design, so the daemon owns the ticker.
	stop := make(chan struct{})
	go func() {
		rt.PollHealth(context.Background()) // immediate first sweep
		tick := time.NewTicker(*healthEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				rt.PollHealth(context.Background())
			}
		}
	}()

	handler := rt.Handler()
	if *obsEvery > 0 {
		// The obs plane samples the router's own registry, so the
		// vqroute_* gauges and counters show up in /vars, /dashboard
		// and vqtop exactly like a replica's series do.
		plane := obs.New(obs.Config{Registry: reg, Capacity: *obsCap, Logger: logger})
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("/vars", plane.VarsHandler())
		mux.Handle("/dashboard", plane.DashboardHandler())
		handler = mux
		go plane.RunWall(*obsEvery, stop)
		logger.Info("obs plane sampling", "interval", *obsEvery, "capacity", *obsCap)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: accessLog(logger, handler),
		// Bound how long a slow (or malicious) client may dribble its
		// request headers before tying up a connection.
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	case s := <-sig:
		logger.Info("draining", "signal", s.String(), "deadline", *drain)
	}
	close(stop)
	// A second signal during the drain forces immediate exit.
	go func() {
		s := <-sig
		logger.Warn("forced exit", "signal", s.String())
		os.Exit(1)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("shutdown", "err", err)
	}
	for _, s := range rt.Statuses() {
		logger.Info("replica at exit", "url", s.URL, "state", s.State, "inflight", s.Inflight)
	}
}

// statusWriter records the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// reqSeq numbers requests for log correlation.
var reqSeq atomic.Uint64

// accessLog wraps the router surface with one structured log line per
// request.
func accessLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(time.Since(start).Microseconds())/1000,
			"req", "r"+strconv.FormatUint(reqSeq.Add(1), 10))
	})
}

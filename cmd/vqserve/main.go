// Command vqserve is the always-on diagnosis daemon: it loads a trained
// model, compiles it for serving, and classifies live session records
// over HTTP through the sharded ingest pipeline of internal/serve.
//
// Usage:
//
//	vqserve -model model.json [-addr :8700] [-shards N] [-queue 256]
//	        [-batch 32] [-policy block|shed] [-watch 10s]
//
// Endpoints:
//
//	POST /diagnose  NDJSON batch, one {"id","features"} object per line
//	GET  /healthz   liveness + model summary
//	GET  /metrics   Prometheus text exposition
//	POST /-/reload  re-read -model and hot-swap it without downtime
//
// With -watch, the model file's mtime is polled and the model reloads
// automatically when a retrainer overwrites it (continuous training).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vqprobe"
	"vqprobe/internal/serve"
)

func loadModel(path string) (*serve.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := vqprobe.LoadModel(f)
	if err != nil {
		return nil, err
	}
	return vqprobe.CompileModel(m)
}

func main() {
	var (
		modelPath = flag.String("model", "model.json", "trained model JSON (from vqtrain)")
		addr      = flag.String("addr", ":8700", "HTTP listen address")
		shards    = flag.Int("shards", 0, "ingest shards/workers (0 = NumCPU)")
		queue     = flag.Int("queue", 256, "per-shard queue depth")
		batch     = flag.Int("batch", 32, "max jobs drained per worker wakeup")
		policy    = flag.String("policy", "block", "full-queue policy: block (backpressure) or shed")
		watch     = flag.Duration("watch", 0, "poll the model file and hot-reload on change (0 = off)")
	)
	flag.Parse()

	var pol serve.Policy
	switch *policy {
	case "block":
		pol = serve.Block
	case "shed":
		pol = serve.Shed
	default:
		fmt.Fprintf(os.Stderr, "vqserve: unknown -policy %q (want block or shed)\n", *policy)
		os.Exit(2)
	}

	model, err := loadModel(*modelPath)
	if err != nil {
		log.Fatalf("vqserve: loading model: %v", err)
	}
	eng := serve.NewEngine(model, serve.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		MaxBatch:   *batch,
		Policy:     pol,
		ReloadFunc: func() (*serve.Model, error) { return loadModel(*modelPath) },
	})
	log.Printf("vqserve: serving %s task, %d features, %d classes on %s",
		model.Task(), len(model.Schema()), len(model.Classes()), *addr)

	stopWatch := make(chan struct{})
	if *watch > 0 {
		go watchModel(eng, *modelPath, *watch, stopWatch)
	}

	srv := &http.Server{Addr: *addr, Handler: eng.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("vqserve: %v", err)
	case s := <-sig:
		log.Printf("vqserve: %v, draining", s)
	}
	close(stopWatch)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("vqserve: shutdown: %v", err)
	}
	eng.Close()
	log.Print("vqserve: drained cleanly")
}

// watchModel polls the model file's mtime and hot-swaps the engine's
// snapshot when it changes; load errors keep the old model serving.
func watchModel(eng *serve.Engine, path string, every time.Duration, stop <-chan struct{}) {
	var last time.Time
	if st, err := os.Stat(path); err == nil {
		last = st.ModTime()
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		st, err := os.Stat(path)
		if err != nil || !st.ModTime().After(last) {
			continue
		}
		m, err := loadModel(path)
		if err != nil {
			log.Printf("vqserve: reload skipped, %v", err)
			continue
		}
		last = st.ModTime()
		eng.Reload(m)
		log.Printf("vqserve: hot-reloaded model (%d features, %d classes)",
			len(m.Schema()), len(m.Classes()))
	}
}

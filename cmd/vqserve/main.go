// Command vqserve is the always-on diagnosis daemon: it loads a trained
// model, compiles it for serving, and classifies live session records
// over HTTP through the sharded ingest pipeline of internal/serve.
//
// Usage:
//
//	vqserve -model model.json [-addr :8700] [-shards N] [-queue 256]
//	        [-batch 32] [-policy block|shed] [-watch 10s]
//	        [-log-format text|json] [-trace-buf 0] [-pprof-addr ""]
//	        [-obs 2s] [-obs-cap 360] [-slo slo.json]
//
// Endpoints:
//
//	POST /diagnose     NDJSON batch, one {"id","features"} object per line
//	                   (add "explain":true for the decision path + rule)
//	GET  /healthz      liveness + model summary + firing SLO alerts
//	GET  /metrics      Prometheus text exposition (OpenMetrics with
//	                   exemplar trace IDs via Accept negotiation)
//	GET  /vars         obs telemetry snapshot: ring-store history with
//	                   rates, windowed quantiles and SLO alert state
//	GET  /dashboard    self-contained HTML dashboard polling /vars
//	POST /-/reload     re-read -model and hot-swap it without downtime
//	GET  /debug/trace  span ring-buffer dump (only with -trace-buf > 0)
//
// The obs telemetry plane samples every metric into a fixed ring store
// each -obs interval and evaluates SLO burn-rate alerts (multi-window,
// Google SRE workbook style). -slo names a JSON objective file (see
// docs/OBSERVABILITY.md); without it the stock vqserve objectives
// apply. -obs 0 disables the plane and its endpoints entirely.
//
// -model (and -watch) accepts either model format: vqtrain's JSON or
// the binary snapshot from vqtrain -emit-snapshot. Snapshots decode in
// a single sequential read — no JSON parsing, no tree re-compilation —
// so hot-reload cost is independent of model size.
//
// With -watch, the model file's mtime is polled and the model reloads
// automatically when a retrainer overwrites it (continuous training).
// -trace-buf N keeps the last N spans in memory and stamps results and
// access logs with trace IDs; -pprof-addr serves net/http/pprof on a
// separate listener. Logs are structured (log/slog); -log-format json
// switches them to one JSON object per line.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"vqprobe"
	"vqprobe/internal/buildinfo"
	"vqprobe/internal/metrics"
	"vqprobe/internal/obs"
	"vqprobe/internal/serve"
	"vqprobe/internal/trace"
)

func loadModel(path string) (*serve.Model, error) {
	return vqprobe.LoadServingModel(path)
}

// newLogger builds the process logger: text (the default, human
// friendly) or json (one object per line, for log shippers).
func newLogger(format string) *slog.Logger {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil))
	default:
		fmt.Fprintf(os.Stderr, "vqserve: unknown -log-format %q (want text or json)\n", format)
		os.Exit(2)
		return nil
	}
}

func main() {
	var (
		modelPath = flag.String("model", "model.json", "trained model: vqtrain JSON or binary snapshot (-emit-snapshot)")
		addr      = flag.String("addr", ":8700", "HTTP listen address")
		shards    = flag.Int("shards", 0, "ingest shards/workers (0 = NumCPU)")
		queue     = flag.Int("queue", 256, "per-shard queue depth")
		batch     = flag.Int("batch", 32, "max jobs drained per worker wakeup")
		policy    = flag.String("policy", "block", "full-queue policy: block (backpressure) or shed")
		watch     = flag.Duration("watch", 0, "poll the model file and hot-reload on change (0 = off)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests on SIGTERM")
		logFmt    = flag.String("log-format", "text", "log output format: text or json")
		traceBuf  = flag.Int("trace-buf", 0, "span ring-buffer capacity; > 0 enables tracing and /debug/trace")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
		obsEvery  = flag.Duration("obs", 2*time.Second, "telemetry plane sampling interval; 0 disables /vars, /dashboard and SLO alerts")
		obsCap    = flag.Int("obs-cap", 360, "telemetry ring capacity in samples per series")
		sloPath   = flag.String("slo", "", "SLO objectives JSON (default: built-in vqserve objectives)")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "vqserve")
		return
	}
	logger := newLogger(*logFmt)
	slog.SetDefault(logger)

	var pol serve.Policy
	switch *policy {
	case "block":
		pol = serve.Block
	case "shed":
		pol = serve.Shed
	default:
		fmt.Fprintf(os.Stderr, "vqserve: unknown -policy %q (want block or shed)\n", *policy)
		os.Exit(2)
	}

	var tracer *trace.Tracer
	if *traceBuf > 0 {
		tracer = trace.New(trace.Config{Capacity: *traceBuf})
	}

	model, err := loadModel(*modelPath)
	if err != nil {
		logger.Error("loading model failed", "path", *modelPath, "err", err)
		os.Exit(1)
	}

	// The obs telemetry plane shares the engine's registry: burn-rate
	// gauges land next to the engine's own series and every counter the
	// engine registers is ring-sampled.
	var plane *obs.Plane
	var alertsFunc func() any
	reg := metrics.NewRegistry()
	if *obsEvery > 0 {
		slos := obs.DefaultServeSLOs()
		if *sloPath != "" {
			f, err := os.Open(*sloPath)
			if err != nil {
				logger.Error("opening SLO config failed", "path", *sloPath, "err", err)
				os.Exit(1)
			}
			slos, err = obs.LoadSLOs(f)
			f.Close()
			if err != nil {
				logger.Error("loading SLO config failed", "path", *sloPath, "err", err)
				os.Exit(1)
			}
		}
		plane = obs.New(obs.Config{
			Registry: reg,
			Capacity: *obsCap,
			SLOs:     slos,
			Logger:   logger,
		})
		alertsFunc = func() any { return plane.FiringAlerts() }
	}

	eng := serve.NewEngine(model, serve.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		MaxBatch:   *batch,
		Policy:     pol,
		Registry:   reg,
		ReloadFunc: func() (*serve.Model, error) { return loadModel(*modelPath) },
		Tracer:     tracer,
		AlertsFunc: alertsFunc,
	})
	info := model.Info()
	logger.Info("serving",
		"task", model.Task(), "model", info.Kind, "trees", info.Trees,
		"nodes", info.Nodes, "load_ms", info.LoadMillis,
		"features", len(model.Schema()), "classes", len(model.Classes()),
		"addr", *addr, "tracing", tracer != nil)

	if *pprofAddr != "" {
		// pprof registers on http.DefaultServeMux; the diagnosis surface
		// uses its own mux, so the profile listener exposes nothing else.
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	stopWatch := make(chan struct{})
	if *watch > 0 {
		go watchModel(eng, logger, *modelPath, *watch, stopWatch)
	}

	handler := eng.Handler()
	if plane != nil {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("/vars", plane.VarsHandler())
		mux.Handle("/dashboard", plane.DashboardHandler())
		handler = mux
		go plane.RunWall(*obsEvery, stopWatch)
		logger.Info("obs plane sampling", "interval", *obsEvery, "capacity", *obsCap)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: accessLog(logger, tracer, handler),
		// Bound how long a slow (or malicious) client may dribble its
		// request headers before tying up a connection.
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	case s := <-sig:
		logger.Info("draining", "signal", s.String(), "deadline", *drain)
	}
	close(stopWatch)
	// A second signal during the drain forces immediate exit.
	go func() {
		s := <-sig
		logger.Warn("forced exit", "signal", s.String())
		os.Exit(1)
	}()
	drainAndClose(logger, srv, eng, *drain)
}

// drainAndClose shuts the HTTP listener down with a deadline, drains
// the engine's queues, and verifies the request accounting balances:
// every request accepted into the pipeline was answered (classified or
// failed) before exit. An imbalance means requests were dropped on the
// floor and is reported as an error.
func drainAndClose(logger *slog.Logger, srv *http.Server, eng *serve.Engine, deadline time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("shutdown", "err", err)
	}
	if err := eng.Close(); err != nil {
		logger.Warn("engine close", "err", err)
	}
	submitted, requests, errs, shed := eng.Counters()
	if submitted != requests+errs {
		logger.Error("drain accounting imbalance: requests dropped",
			"submitted", submitted, "classified", requests, "errors", errs, "shed", shed)
		return
	}
	logger.Info("drained cleanly",
		"submitted", submitted, "classified", requests, "errors", errs, "shed", shed)
}

// statusWriter records the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// reqSeq numbers requests for log correlation when tracing is off.
var reqSeq atomic.Uint64

// accessLog wraps the diagnosis surface with one structured log line
// per request. With tracing enabled each request also records an
// "http" span whose ID is the log line's trace_id, tying access logs
// to /debug/trace output and histogram exemplars.
func accessLog(logger *slog.Logger, tr *trace.Tracer, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		span := tr.StartSpan("http", r.Method+" "+r.URL.Path, 0)
		var tid string
		if span.Active() {
			tid = strconv.FormatUint(uint64(span.ID()), 16)
		} else {
			tid = "r" + strconv.FormatUint(reqSeq.Add(1), 10)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		span.EndDetail("status=" + strconv.Itoa(sw.status))
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(time.Since(start).Microseconds())/1000,
			"trace_id", tid)
	})
}

// watchModel polls the model file's mtime and hot-swaps the engine's
// snapshot when it changes; load errors keep the old model serving.
func watchModel(eng *serve.Engine, logger *slog.Logger, path string, every time.Duration, stop <-chan struct{}) {
	var last time.Time
	if st, err := os.Stat(path); err == nil {
		last = st.ModTime()
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		st, err := os.Stat(path)
		if err != nil || !st.ModTime().After(last) {
			continue
		}
		m, err := loadModel(path)
		if err != nil {
			// Keep serving the last-good model; /healthz turns degraded
			// until a subsequent reload succeeds.
			eng.NoteReloadError(err)
			logger.Warn("reload failed, serving last-good model", "err", err)
			continue
		}
		last = st.ModTime()
		eng.Reload(m)
		info := m.Info()
		logger.Info("hot-reloaded model",
			"model", info.Kind, "nodes", info.Nodes, "snapshot", info.SnapshotHash,
			"load_ms", info.LoadMillis, "features", len(m.Schema()), "classes", len(m.Classes()))
	}
}

package main

import (
	"bytes"
	"log/slog"
	"net/http"
	"testing"
	"time"

	"vqprobe/internal/serve"
)

// TestDrainAndCloseBalancedAccounting pins the shutdown fix: after the
// listener and engine drain, every accepted request must have been
// answered (submitted == classified + errors) and the exit log must
// say so rather than report dropped requests.
func TestDrainAndCloseBalancedAccounting(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))

	// A nil model makes every request fail with "no model loaded" —
	// errors still count toward the accounting invariant.
	eng := serve.NewEngine(nil, serve.Config{Shards: 1})
	for i := 0; i < 5; i++ {
		eng.DiagnoseBatch([]serve.Request{{ID: "x", Features: map[string]float64{"f": 1}}})
	}

	srv := &http.Server{Addr: "127.0.0.1:0"} // never started; Shutdown is a no-op
	drainAndClose(logger, srv, eng, time.Second)

	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("drained cleanly")) {
		t.Fatalf("drain did not report clean accounting:\n%s", out)
	}
	if bytes.Contains(buf.Bytes(), []byte("imbalance")) {
		t.Fatalf("drain reported dropped requests:\n%s", out)
	}
	submitted, requests, errs, _ := eng.Counters()
	if submitted != 5 || requests != 0 || errs != 5 {
		t.Fatalf("counters = submitted %d classified %d errors %d, want 5/0/5",
			submitted, requests, errs)
	}
}

// Command vqlint runs the project's static-analysis suite
// (internal/lint) over the module: determinism, virtual-clock,
// tracing, and concurrency invariants that unit tests can only
// spot-check at runtime. See docs/LINTING.md for the analyzer catalog
// and the suppression policy.
//
// Usage:
//
//	vqlint [flags] [packages]
//
// where packages are module directories or `dir/...` patterns
// (default `./...`). Exit status: 0 when no unsuppressed findings, 1
// when findings remain, 2 on usage or load errors.
//
// Examples:
//
//	vqlint ./...                           # whole module, text output
//	vqlint -format github ./...            # CI: PR annotations
//	vqlint -checks virtclock,detrand ./... # only the determinism core
//	vqlint -exclude floatfmt internal/...  # everything else, one dir tree
//	vqlint -fix ./...                      # apply machine-generated fixes
//	vqlint -cache .vqlint.cache ./...      # warm runs skip unchanged packages
//	vqlint -list                           # analyzer catalog
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vqprobe/internal/buildinfo"
	"vqprobe/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("vqlint", flag.ContinueOnError)
	var (
		format     = fs.String("format", "text", "output format: text, json, or github")
		checks     = fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
		exclude    = fs.String("exclude", "", "comma-separated analyzer names to skip")
		configPath = fs.String("config", "", "per-directory config file (default: <module>/"+lint.ConfigFileName+")")
		workers    = fs.Int("workers", 0, "parallel package analyses (0 = GOMAXPROCS)")
		fix        = fs.Bool("fix", false, "apply machine-generated fixes in place; remaining findings still report")
		cachePath  = fs.String("cache", "", "incremental cache file: unchanged packages (content + transitive imports) skip re-analysis")
		list       = fs.Bool("list", false, "list analyzers and exit")
		showSupp   = fs.Bool("show-suppressed", false, "also print suppressed findings with their reasons (text format)")
		version    = fs.Bool("version", false, "print version and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: vqlint [flags] [packages]\n\npackages are module directories or dir/... patterns (default ./...)\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(os.Stdout, "vqlint")
		return 0
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	outFormat, err := lint.ParseFormat(*format)
	if err != nil {
		return fail(err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	root, _, err := lint.ModuleRoot(cwd)
	if err != nil {
		return fail(err)
	}

	cfgFile := *configPath
	if cfgFile == "" {
		cfgFile = filepath.Join(root, lint.ConfigFileName)
	}
	cfg, err := lint.LoadConfigFile(cfgFile)
	if err != nil {
		return fail(err)
	}
	cfg.Checks = append(cfg.Checks, lint.SplitList(*checks)...)
	cfg.Exclude = append(cfg.Exclude, lint.SplitList(*exclude)...)
	if err := cfg.Validate(lint.ByName()); err != nil {
		return fail(err)
	}

	dirs, err := resolvePatterns(root, cwd, fs.Args())
	if err != nil {
		return fail(err)
	}

	runner := &lint.Runner{Analyzers: analyzers, Config: cfg, Workers: *workers}
	result, err := lint.RunModule(root, dirs, runner, *cachePath)
	if err != nil {
		return fail(err)
	}
	for _, terr := range result.TypeErrors {
		fmt.Fprintf(os.Stderr, "vqlint: type error (analysis continues): %v\n", terr)
	}
	diags := result.Diags

	if *fix {
		fres, err := lint.ApplyFixes(diags)
		if err != nil {
			return fail(err)
		}
		if fres.Applied > 0 {
			fmt.Fprintf(os.Stderr, "vqlint: applied %d fix(es) in %d file(s)\n", fres.Applied, fres.Files)
		}
		// Fixed findings are resolved; only the ones that need a human
		// still report (and decide the exit code). The next plain run
		// re-verifies against the rewritten source.
		var remaining []lint.Diagnostic
		for _, d := range diags {
			if len(d.Edits) == 0 {
				remaining = append(remaining, d)
			}
		}
		diags = remaining
	}

	if err := lint.WriteDiagnostics(os.Stdout, diags, outFormat, root); err != nil {
		return fail(err)
	}
	if *showSupp && outFormat == lint.FormatText {
		for _, d := range diags {
			if d.Suppressed {
				rel, relErr := filepath.Rel(root, d.Pos.Filename)
				if relErr != nil {
					rel = d.Pos.Filename
				}
				fmt.Printf("%s:%d:%d: %s: suppressed (%s)\n",
					filepath.ToSlash(rel), d.Pos.Line, d.Pos.Column, d.Check, d.SuppressReason)
			}
		}
	}
	if n := lint.Unsuppressed(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "vqlint: %d finding(s)\n", n)
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "vqlint: %v\n", err)
	return 2
}

// resolvePatterns maps CLI package arguments to module-relative
// directories. Supported forms: "dir", "dir/...", "./...", "...".
// No arguments means the whole module.
func resolvePatterns(root, cwd string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	all, err := lint.ListPackageDirs(root)
	if err != nil {
		return nil, err
	}
	selected := map[string]bool{}
	for _, arg := range args {
		recursive := false
		if arg == "..." {
			arg, recursive = ".", true
		} else if rest, found := strings.CutSuffix(arg, "/..."); found {
			arg, recursive = rest, true
			if arg == "" {
				arg = "."
			}
		}
		abs := arg
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, arg)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("vqlint: %s is outside the module rooted at %s", arg, root)
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		matched := false
		for _, d := range all {
			if d == rel || (recursive && (rel == "" || strings.HasPrefix(d, rel+"/"))) {
				selected[d] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("vqlint: no packages match %s", arg)
		}
	}
	dirs := make([]string, 0, len(selected))
	for d := range selected {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

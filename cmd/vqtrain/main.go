// Command vqtrain fits the paper's diagnosis pipeline (feature
// construction, FCBF selection, C4.5) on a CSV dataset produced by
// vqlab and writes the trained model as JSON.
//
// Usage:
//
//	vqtrain -in dataset.csv -out model.json [-task exact]
//	        [-vps mobile,router,server] [-tree] [-features]
//	        [-emit-snapshot model.snap]
//	        [-train-workers N] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -emit-snapshot additionally writes the compiled model as a binary
// c45 snapshot: vqserve and vqdiag load it with a single sequential
// read instead of re-parsing and re-compiling the JSON tree, so serve
// reload cost stays flat as models grow.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"vqprobe"
	"vqprobe/internal/buildinfo"
)

func main() {
	var (
		in       = flag.String("in", "", "training dataset CSV (required)")
		out      = flag.String("out", "model.json", "output model path")
		task     = flag.String("task", "exact", "task label recorded in the model")
		vps      = flag.String("vps", "mobile,router,server", "vantage points recorded in the model")
		showTree = flag.Bool("tree", false, "print the trained decision tree")
		snapOut  = flag.String("emit-snapshot", "", "also write the compiled model as a binary snapshot to this path")
		showSel  = flag.Bool("features", false, "print the selected features")
		workers  = flag.Int("train-workers", 0, "training worker bound; 0 = GOMAXPROCS, 1 = serial (model is identical either way)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the training run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after training to this file")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "vqtrain")
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "vqtrain: -in is required")
		os.Exit(2)
	}

	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pf.Close()
		defer pprof.StopCPUProfile()
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	model, err := vqprobe.TrainFromCSVWorkers(f, vqprobe.Task(*task), strings.Split(*vps, ","), *workers)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *memProf != "" {
		mf, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC() // up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(mf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := mf.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *showSel {
		fmt.Println("selected features:")
		for i, name := range model.SelectedFeatures() {
			fmt.Printf("  %2d  %s\n", i+1, name)
		}
	}
	if *showTree {
		fmt.Println(model.TreeText())
	}

	of, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer of.Close()
	if err := model.Save(of); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("model written to %s (%d selected features)\n", *out, len(model.SelectedFeatures()))

	if *snapOut != "" {
		sf, err := os.Create(*snapOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = model.SaveSnapshot(sf)
		if cerr := sf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("compiled snapshot written to %s\n", *snapOut)
	}
}

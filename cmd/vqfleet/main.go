// Command vqfleet simulates a population-scale fleet of video sessions
// and streams them into windowed fleet analytics: percentile sketches
// for startup delay, stall ratio and MOS plus per-fault-class and
// per-root-cause counters. A million-session fleet runs in bounded
// memory (peak RSS is set by -shards × -maxlive pooled session slots,
// not by -sessions) and the summary bytes are identical for any
// -workers value — see docs/FLEET.md for the determinism contract.
//
// Usage:
//
//	vqfleet [-sessions 1000000] [-seed 1] [-workers 0] [-shards 8]
//	        [-horizon 1h] [-window 1m] [-maxlive 4096]
//	        [-fault-prob 0.30] [-fault wan_cong|...|none]
//	        [-fault-step-at 30m] [-fault-step-prob 0.9] [-drift]
//	        [-fidelity fast|full] [-model model.json]
//	        [-json] [-o fleet.txt] [-quiet]
//	vqfleet -replay 123456 [same scenario flags]
//
// -fault-step-at injects a mid-run incident: sessions arriving past the
// offset carry faults with probability -fault-step-prob instead of
// -fault-prob. -drift runs the obs cause-mix drift detector over the
// windowed summary afterwards and prints the detected shift windows —
// with a fault step, exactly one event at the step window. Progress
// reporting is sampled from an obs telemetry plane (sessions retired,
// sessions/sec, ETA); -quiet silences it.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vqprobe"
	"vqprobe/internal/buildinfo"
	"vqprobe/internal/fleet"
	"vqprobe/internal/metrics"
	"vqprobe/internal/obs"
	"vqprobe/internal/qoe"
	"vqprobe/internal/serve"
)

func main() {
	var (
		sessions  = flag.Int("sessions", 100000, "fleet population size")
		seed      = flag.Int64("seed", 1, "master seed (per-session sub-seeds derive from it)")
		workers   = flag.Int("workers", 0, "goroutines executing shards; 0 = GOMAXPROCS (any value: identical output)")
		shards    = flag.Int("shards", 8, "event-loop count (part of the virtual topology)")
		horizon   = flag.Duration("horizon", time.Hour, "virtual-time span session arrivals spread over")
		window    = flag.Duration("window", time.Minute, "tumbling aggregation window")
		maxLive   = flag.Int("maxlive", 4096, "pooled live-session slots per shard (memory bound)")
		faultProb = flag.Float64("fault-prob", 0.30, "probability a session carries an induced fault")
		faultName = flag.String("fault", "", "pin all faulty sessions to one fault class (default: natural mix)")
		stepAt    = flag.Duration("fault-step-at", 0, "step the fault probability for arrivals at/after this horizon offset (0 = off)")
		stepProb  = flag.Float64("fault-step-prob", 0.9, "fault probability after -fault-step-at")
		driftOn   = flag.Bool("drift", false, "detect cause-mix drift across windows and print the events")
		fidelity  = flag.String("fidelity", "fast", "fast = fluid session model; full = packet-level testbed (~1000x cost)")
		modelPath = flag.String("model", "", "trained model: diagnose every session through the serve engine and score accuracy")
		asJSON    = flag.Bool("json", false, "emit the fleet summary as JSON instead of text")
		outPath   = flag.String("o", "", "write the summary to a file instead of stdout")
		quiet     = flag.Bool("quiet", false, "suppress progress reporting on stderr")
		replay    = flag.Int64("replay", -1, "re-simulate one session index in isolation and print it")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "vqfleet")
		return
	}

	cfg := fleet.Config{
		Sessions:      *sessions,
		Seed:          *seed,
		Workers:       *workers,
		Shards:        *shards,
		Horizon:       *horizon,
		Window:        *window,
		MaxLive:       *maxLive,
		FaultProb:     *faultProb,
		FaultStepAt:   *stepAt,
		FaultStepProb: *stepProb,
		Full:          *fidelity == "full",
	}
	if *fidelity != "fast" && *fidelity != "full" {
		fmt.Fprintf(os.Stderr, "vqfleet: unknown -fidelity %q (want fast or full)\n", *fidelity)
		os.Exit(2)
	}
	if *faultName != "" && *faultName != "none" {
		found := false
		for _, f := range qoe.Faults {
			if f.String() == *faultName {
				cfg.PinFault, found = f, true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "vqfleet: unknown fault %q\n", *faultName)
			os.Exit(2)
		}
	}

	var engine *serve.Engine
	if *modelPath != "" {
		compiled, err := vqprobe.LoadServingModel(*modelPath)
		if err != nil {
			fatal(err)
		}
		engine = serve.NewEngine(compiled, serve.Config{})
		defer engine.Close()
		cfg.Engine = engine
		cfg.ModelTask = compiled.Task()
	}

	if *replay >= 0 {
		doReplay(cfg, uint64(*replay))
		return
	}

	// Progress reporting rides the obs telemetry plane: retired sessions
	// land in a counter, a wall-clock sampler rings it, and each sample
	// prints throughput and ETA derived from the ring history.
	if !*quiet {
		preg := metrics.NewRegistry()
		retired := preg.Counter("vqfleet_sessions_total", "sessions retired")
		cfg.Progress = func(n int) { retired.Add(uint64(n)) }
		total := float64(*sessions)
		plane := obs.New(obs.Config{
			Registry: preg,
			Capacity: 64,
			OnSample: func(p *obs.Plane, _ time.Duration) {
				done, _ := p.Last("vqfleet_sessions_total")
				rate := p.Rate("vqfleet_sessions_total", 10*time.Second)
				eta := "?"
				if rate > 0 && done < total {
					eta = time.Duration(float64(time.Second) * (total - done) / rate).Round(time.Second).String()
				}
				fmt.Fprintf(os.Stderr, "vqfleet: %.0f/%d sessions (%.0f/sec, ETA %s)\n",
					done, *sessions, rate, eta)
			},
		})
		stop := make(chan struct{})
		defer close(stop)
		go plane.RunWall(2*time.Second, stop)
	}

	start := time.Now()
	sum, stats, err := fleet.Run(cfg)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	var out []byte
	if *asJSON {
		out, err = sum.EncodeJSON()
		if err != nil {
			fatal(err)
		}
		out = append(out, '\n')
	} else {
		out = sum.EncodeText()
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(out)
	}
	if *driftOn {
		events := fleet.CauseDrift(sum, obs.DriftConfig{})
		if len(events) == 0 {
			fmt.Println("drift: none detected")
		}
		for _, ev := range events {
			fmt.Printf("drift: window %d (t=%v) jsd=%.4f top mover %s (%+.3f) over %d sessions\n",
				ev.Window, time.Duration(ev.Window)**window, ev.JSD, ev.Cause, ev.Delta, ev.Sessions)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "vqfleet: %d sessions in %v (%.0f sessions/sec, peak %d live/shard of %d slots)\n",
			*sessions, elapsed.Round(time.Millisecond),
			float64(*sessions)/elapsed.Seconds(), stats.MaxLive, cfg.MaxLive)
	}
}

// doReplay pulls one session out of the fleet and prints everything
// known about it — the flagged-session drill-down path.
func doReplay(cfg fleet.Config, index uint64) {
	res, err := fleet.Replay(cfg, index)
	if err != nil {
		fatal(err)
	}
	sc, sum, rep := res.Scenario, res.Summary, res.Report
	fmt.Printf("session %d (seed %d): arrival=%v wan=%s tech=%s clip=%.1fMb/s %v tier=%d\n",
		sc.Index, sc.Seed, sc.Arrival.Round(time.Millisecond), sc.WAN, sc.Tech,
		sc.Clip.Bitrate/1e6, sc.Clip.Duration.Round(time.Second), sc.DeviceTier)
	fmt.Printf("scenario: fault=%s intensity=%.2f window=[%v +%v] rssi=%.1fdBm bg=%.2f\n",
		sc.Spec.Fault, sc.Spec.Intensity, sc.FaultFrom.Round(time.Millisecond),
		sc.FaultDur.Round(time.Millisecond), sc.BaseRSSI, sc.Background)
	fmt.Printf("outcome: mos=%.2f severity=%s startup=%v stalls=%d (%v) played=%.1fs completed=%v\n",
		sum.MOS, sum.Severity, rep.StartupDelay.Round(time.Millisecond),
		rep.Stalls, rep.StallTime.Round(time.Millisecond), rep.PlayedSec, rep.Completed)
	if rep.Failed {
		fmt.Printf("FAILED: %s\n", rep.FailReason)
	}
	fmt.Printf("cause: truth=%s diagnosed=%s\n",
		fleet.CauseClasses()[sum.TrueCause()], fleet.CauseClasses()[sum.Cause])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vqfleet:", err)
	os.Exit(1)
}

// Benchmarks: one per reproduced table/figure (regenerating the
// experiment from a small cached suite), plus microbenchmarks for every
// substrate layer (simulator, TCP, session, learners). Run with
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks measure the analysis cost on fixed datasets;
// BenchmarkSessionSimulation measures the cost of producing one labeled
// instance end to end.
package vqprobe_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"vqprobe"
	"vqprobe/internal/experiments"
	"vqprobe/internal/features"
	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/ml/bayes"
	"vqprobe/internal/ml/c45"
	"vqprobe/internal/ml/svm"
	"vqprobe/internal/probe"
	"vqprobe/internal/simnet"
	"vqprobe/internal/tcpsim"
	"vqprobe/internal/testbed"
	"vqprobe/internal/trace"
	"vqprobe/internal/video"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchSuite returns a small shared suite; datasets generate once and
// are reused by every figure benchmark.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(experiments.Config{
			ControlledSessions: 220, RealWorldSessions: 120, WildSessions: 150, Seed: 1,
		})
		// Pre-generate outside the timed region of any benchmark.
		suite.Controlled()
		suite.RealWorld()
		suite.Wild()
	})
	return suite
}

func benchExperiment(b *testing.B, id string) {
	s := benchSuite(b)
	e, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := e.Run(s); len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// ---- one benchmark per table and figure ----

func BenchmarkTable1FeatureSelection(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig3ProblemDetection(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkLocationDetection(b *testing.B)      { benchExperiment(b, "loc") }
func BenchmarkFig4ExactProblem(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkTable4FeatureRanking(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkFig5FeatureSets(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkAlgorithmComparison(b *testing.B)    { benchExperiment(b, "algos") }
func BenchmarkFig6RealWorldDetection(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7RealWorldExact(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8InTheWild(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9ServerEstimates(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkTable5WildRootCause(b *testing.B)    { benchExperiment(b, "table5") }

// ---- ablation benchmarks (design choices called out in DESIGN.md) ----

func BenchmarkAblationFCvsFS(b *testing.B)          { benchExperiment(b, "ablate-fc") }
func BenchmarkAblationPruning(b *testing.B)         { benchExperiment(b, "ablate-prune") }
func BenchmarkAblationVPPairs(b *testing.B)         { benchExperiment(b, "ablate-pairs") }
func BenchmarkAblationFluidBackground(b *testing.B) { benchExperiment(b, "ablate-fluid") }

// ---- substrate microbenchmarks ----

// BenchmarkSimnetForwarding measures raw packet forwarding through the
// discrete-event core (two links + router per packet).
func BenchmarkSimnetForwarding(b *testing.B) {
	sim := simnet.New(1)
	h := sim.NewNode("h", 1)
	r := sim.NewNode("r", 100)
	d := sim.NewNode("d", 2)
	hn := h.AddNIC("0")
	r0, r1 := r.AddNIC("0"), r.AddNIC("1")
	dn := d.AddNIC("0")
	simnet.ConnectSym(sim, "a", hn, r0, simnet.LinkConfig{Rate: 1e9, QueueBytes: 1 << 30})
	simnet.ConnectSym(sim, "b", r1, dn, simnet.LinkConfig{Rate: 1e9, QueueBytes: 1 << 30})
	rt := simnet.NewRouter(r)
	rt.AddRoute(2, r1)
	d.SetHandler(simnet.HandlerFunc(func(*simnet.NIC, *simnet.Packet) {}))
	flow := simnet.FlowKey{Proto: simnet.ProtoUDP, Src: 1, Dst: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Send(hn, sim.NewPacket(flow, 1460, nil))
		sim.RunAll()
	}
}

// BenchmarkTCPTransfer measures a complete 1MB TCP transfer over a
// 20Mb/s path, including handshake and teardown.
func BenchmarkTCPTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := simnet.New(int64(i + 1))
		cn := sim.NewNode("c", 1)
		sn := sim.NewNode("s", 2)
		cnic, snic := cn.AddNIC("0"), sn.AddNIC("0")
		simnet.ConnectSym(sim, "l", cnic, snic,
			simnet.LinkConfig{Rate: 20e6, Delay: 20 * time.Millisecond, QueueBytes: 128 * 1024})
		client := tcpsim.NewHost(cn, cnic)
		server := tcpsim.NewHost(sn, snic)
		server.Listen(80, func(c *tcpsim.Conn) {
			c.OnEstablished = func() { c.Write(1_000_000); c.Close() }
		})
		cc := client.Dial(2, 80)
		cc.OnPeerClose = func() { cc.Close(); sim.Halt() }
		sim.Run(2 * time.Minute)
	}
}

// BenchmarkSessionSimulation measures producing one fully labeled
// session: topology build, streaming, probes, teardown.
func BenchmarkSessionSimulation(b *testing.B) {
	clip := video.Clip{ID: 1, Quality: video.SD, Bitrate: 1e6, Duration: 30 * time.Second, FPS: 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testbed.RunSession(testbed.SessionConfig{
			Opts: testbed.Options{
				Seed: int64(i + 1), BackgroundScale: 0.4, ServerLoadMean: 0.1,
				InstrumentRouter: true, InstrumentServer: true,
			},
			Clip: clip,
		})
	}
}

// benchmark dataset for the learner benchmarks.
func learnerData(b *testing.B) *ml.Dataset {
	b.Helper()
	s := benchSuite(b)
	return testbed.ToDataset(s.Controlled(), []string{"mobile", "router", "server"}, testbed.ExactLabel)
}

func BenchmarkFeatureConstruction(b *testing.B) {
	d := learnerData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.Construct(d)
	}
}

func BenchmarkFCBFSelection(b *testing.B) {
	d := learnerData(b)
	constructed, _ := features.Construct(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.FCBF(constructed, 0.02)
	}
}

func BenchmarkC45Training(b *testing.B) {
	d := learnerData(b)
	reduced, _, _ := features.Select(d, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c45.Default().TrainTree(reduced)
	}
}

func BenchmarkC45Prediction(b *testing.B) {
	d := learnerData(b)
	reduced, _, _ := features.Select(d, 0.02)
	tree := c45.Default().TrainTree(reduced)
	fv := reduced.Instances[0].Features
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Predict(fv)
	}
}

func BenchmarkNaiveBayesTraining(b *testing.B) {
	d := learnerData(b)
	reduced, _, _ := features.Select(d, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bayes.New().Train(reduced)
	}
}

func BenchmarkSVMTraining(b *testing.B) {
	d := learnerData(b)
	reduced, _, _ := features.Select(d, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svm.New(svm.Config{Seed: int64(i)}).Train(reduced)
	}
}

func BenchmarkCrossValidation(b *testing.B) {
	d := learnerData(b)
	reduced, _, _ := features.Select(d, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.CrossValidate(c45.Default(), reduced, 10, rand.New(rand.NewSource(int64(i))))
	}
}

// BenchmarkFlowMeter measures the probe's per-data-segment cost: a
// b.N-segment transfer observed by a tstat-style meter at the receiver.
func BenchmarkFlowMeter(b *testing.B) {
	sim := simnet.New(1)
	cn := sim.NewNode("c", 1)
	sn := sim.NewNode("s", 2)
	cnic, snic := cn.AddNIC("0"), sn.AddNIC("0")
	simnet.ConnectSym(sim, "l", cnic, snic, simnet.LinkConfig{Rate: 1e10, QueueBytes: 1 << 30})
	client := tcpsim.NewHost(cn, cnic)
	server := tcpsim.NewHost(sn, snic)
	meter := probe.NewFlowMeter(cn)
	server.Listen(80, func(c *tcpsim.Conn) {
		c.OnEstablished = func() { c.Write(int64(b.N) * 1460); c.Close() }
	})
	cc := client.Dial(2, 80)
	cc.OnPeerClose = func() { cc.Close(); sim.Halt() }
	b.ResetTimer()
	sim.Run(10 * time.Hour)
	b.StopTimer()
	if rec := meter.Flow(cc.Flow()); rec == nil {
		b.Fatal("meter missed the flow")
	}
	var _ metrics.Vector
}

// ---- serving benchmarks (internal/serve + compiled evaluator) ----

var (
	servingOnce     sync.Once
	servingModel    *vqprobe.Model
	servingCompiled *vqprobe.CompiledModel
	servingFV       metrics.Vector
	servingReqs     []vqprobe.ServeRequest
)

// servingFixture trains one full-pipeline model on the shared suite and
// compiles it, plus a pool of merged multi-VP request vectors.
func servingFixture(b *testing.B) {
	b.Helper()
	s := benchSuite(b)
	servingOnce.Do(func() {
		sessions := s.Controlled()
		m, err := vqprobe.Train(sessions, vqprobe.IdentifyRootCause, vqprobe.AllVantagePoints)
		if err != nil {
			b.Fatal(err)
		}
		cm, err := vqprobe.CompileModel(m)
		if err != nil {
			b.Fatal(err)
		}
		servingModel, servingCompiled = m, cm
		for i, sess := range sessions {
			fv := metrics.Vector{}
			for vp, rec := range sess.Records {
				fv.Merge(vp, rec)
			}
			if i == 0 {
				servingFV = fv
			}
			servingReqs = append(servingReqs, vqprobe.ServeRequest{
				ID: string(rune('a'+i%26)) + "-session", Features: fv,
			})
		}
	})
}

// BenchmarkTreePredict is the offline baseline: pointer-chasing tree
// walk with per-node map lookups (Model.PredictVector).
func BenchmarkTreePredict(b *testing.B) {
	servingFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servingModel.PredictVector(servingFV)
	}
}

// BenchmarkCompiledPredict is the serving path: same normalization, but
// tree evaluation over the flat compiled node array.
func BenchmarkCompiledPredict(b *testing.B) {
	servingFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servingCompiled.Diagnose(servingFV)
	}
}

// BenchmarkServeThroughput pushes sessions through the full ingest
// pipeline (sharding, queues, batching, per-stage metrics) and reports
// end-to-end sessions/sec.
func BenchmarkServeThroughput(b *testing.B) {
	servingFixture(b)
	eng := vqprobe.NewEngine(servingCompiled, vqprobe.EngineConfig{})
	defer eng.Close()
	const batch = 256
	reqs := make([]vqprobe.ServeRequest, batch)
	for i := range reqs {
		reqs[i] = servingReqs[i%len(servingReqs)]
	}
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := batch
		if left := b.N - done; left < n {
			n = left
		}
		eng.DiagnoseBatch(reqs[:n])
		done += n
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
}

// BenchmarkCompiledPredictExplain is the explained serving path: the
// same compiled traversal but recording every node visited plus the
// rule rendering — the cost of "explain":true on /diagnose.
func BenchmarkCompiledPredictExplain(b *testing.B) {
	servingFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servingCompiled.DiagnoseExplain(servingFV)
	}
}

// BenchmarkServeThroughputTraced is BenchmarkServeThroughput with a
// live tracer: every request records a span tree and histogram
// exemplars. Compare the two to see the enabled-tracing overhead; the
// disabled path is the plain benchmark above (a nil tracer short-
// circuits before any allocation, pinned by TestDisabledPathAllocs in
// internal/trace).
func BenchmarkServeThroughputTraced(b *testing.B) {
	servingFixture(b)
	tr := trace.New(trace.Config{Capacity: 1 << 14})
	eng := vqprobe.NewEngine(servingCompiled, vqprobe.EngineConfig{Tracer: tr})
	defer eng.Close()
	const batch = 256
	reqs := make([]vqprobe.ServeRequest, batch)
	for i := range reqs {
		reqs[i] = servingReqs[i%len(servingReqs)]
	}
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := batch
		if left := b.N - done; left < n {
			n = left
		}
		eng.DiagnoseBatch(reqs[:n])
		done += n
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
}

// ---- extension benchmarks (paper Sections 7 and 9 proposals) ----

func BenchmarkExtIterativeRCA(b *testing.B)       { benchExperiment(b, "ext-iterative") }
func BenchmarkExtContinuousTraining(b *testing.B) { benchExperiment(b, "ext-continuous") }
func BenchmarkExtMissingVP(b *testing.B)          { benchExperiment(b, "ext-missingvp") }
func BenchmarkExtMultiProblem(b *testing.B)       { benchExperiment(b, "ext-multiproblem") }

func BenchmarkExtAdaptiveDelivery(b *testing.B) { benchExperiment(b, "ext-adaptive") }

func BenchmarkAblationForest(b *testing.B) { benchExperiment(b, "ablate-forest") }

func BenchmarkAblationMDL(b *testing.B) { benchExperiment(b, "ablate-mdl") }

func BenchmarkAblationSeeds(b *testing.B) { benchExperiment(b, "ablate-seeds") }

func BenchmarkExtFineSeverity(b *testing.B) { benchExperiment(b, "ext-fine") }

package vqprobe_test

import (
	"os"
	"path/filepath"
	"testing"

	"vqprobe"
)

// TestSnapshotRoundTripMatchesJSONModel pins the binary snapshot path
// end to end at the facade: a model written with SaveSnapshot and
// loaded back through LoadServingModel must classify every session
// exactly like the compiled JSON model, and must carry provenance
// (content hash, load time) that the JSON path also records.
func TestSnapshotRoundTripMatchesJSONModel(t *testing.T) {
	model, err := vqprobe.Train(facadeSessions, vqprobe.IdentifyRootCause, vqprobe.AllVantagePoints)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "model.json")
	jf, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Save(jf); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	snapPath := filepath.Join(dir, "model.snap")
	sf, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.SaveSnapshot(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	fromJSON, err := vqprobe.LoadServingModel(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	fromSnap, err := vqprobe.LoadServingModel(snapPath)
	if err != nil {
		t.Fatal(err)
	}

	ji, si := fromJSON.Info(), fromSnap.Info()
	if ji.Kind != "tree" || si.Kind != "tree" {
		t.Fatalf("model kinds wrong: json %+v, snapshot %+v", ji, si)
	}
	if ji.Nodes != si.Nodes {
		t.Fatalf("node counts differ: json %d, snapshot %d", ji.Nodes, si.Nodes)
	}
	if ji.SnapshotHash == "" || si.SnapshotHash == "" || ji.SnapshotHash == si.SnapshotHash {
		t.Fatalf("provenance hashes wrong: json %q, snapshot %q", ji.SnapshotHash, si.SnapshotHash)
	}
	if fromSnap.Task() != string(model.Task) {
		t.Fatalf("snapshot lost the task: %q", fromSnap.Task())
	}

	for i, s := range facadeSessions {
		if i >= 60 {
			break
		}
		fv := map[string]float64{}
		for vp, rec := range s.Records {
			for k, v := range rec {
				fv[vp+"."+k] = v
			}
		}
		got := fromSnap.Diagnose(fv)
		want := fromJSON.Diagnose(fv)
		if got.Class != want.Class || got.Severity != want.Severity || got.Cause != want.Cause {
			t.Fatalf("session %d: snapshot model %+v, json model %+v", i, got, want)
		}
	}
}

// TestLoadServingModelRejectsCorruptSnapshot pins the failure mode: a
// damaged snapshot file must error out, never serve a wrong model.
func TestLoadServingModelRejectsCorruptSnapshot(t *testing.T) {
	model, err := vqprobe.Train(facadeSessions, vqprobe.DetectSeverity, vqprobe.AllVantagePoints)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.SaveSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := vqprobe.LoadServingModel(path); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

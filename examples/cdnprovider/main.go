// Content-provider monitoring: the paper's most surprising result
// (Figure 9). The server vantage point sees nothing but its own TCP
// stack's view of each flow — yet a lab-trained model can flag sessions
// whose problems are on the *client's* side (overloaded handset, weak
// radio signal), without any client instrumentation.
package main

import (
	"fmt"
	"sort"
	"strings"

	"vqprobe"
)

func main() {
	fmt.Println("training a root-cause model from the SERVER vantage point only...")
	train := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 600, Seed: 31})
	model, err := vqprobe.Train(train, vqprobe.IdentifyRootCause, []string{vqprobe.VPServer})
	if err != nil {
		panic(err)
	}

	fmt.Println("observing 400 in-the-wild sessions from the CDN's side...")
	wild := vqprobe.SimulateWild(vqprobe.SimulationConfig{Sessions: 400, Seed: 999})

	var loadCPU, otherCPU, rssiFlag, rssiOther []float64
	for _, s := range wild {
		srv, ok := s.Records[vqprobe.VPServer]
		if !ok {
			continue // session went to a third-party service
		}
		diag := model.Diagnose(map[string]map[string]float64{vqprobe.VPServer: srv})
		// Compare against client-side ground truth the server never saw.
		mob := s.Records[vqprobe.VPMobile]
		cpu, rssi := mob["hw_cpu_pct_avg"], mob["wlan0_nic_rssi_dbm_avg"]
		if strings.HasPrefix(diag.Cause, "mobile_load") {
			loadCPU = append(loadCPU, cpu)
		} else {
			otherCPU = append(otherCPU, cpu)
		}
		if strings.HasPrefix(diag.Cause, "low_rssi") {
			rssiFlag = append(rssiFlag, rssi)
		} else {
			rssiOther = append(rssiOther, rssi)
		}
	}

	fmt.Println("client CPU ground truth (which the server cannot see):")
	fmt.Printf("  flagged 'mobile load' : median %5.1f%%  (n=%d)\n", median(loadCPU), len(loadCPU))
	fmt.Printf("  everything else       : median %5.1f%%  (n=%d)\n", median(otherCPU), len(otherCPU))
	fmt.Println("client RSSI ground truth:")
	fmt.Printf("  flagged 'low RSSI'    : median %5.1f dBm (n=%d)\n", median(rssiFlag), len(rssiFlag))
	fmt.Printf("  everything else       : median %5.1f dBm (n=%d)\n", median(rssiOther), len(rssiOther))
	fmt.Println("\nhigher CPU / lower RSSI in the flagged groups = the server is")
	fmt.Println("inferring client-local state from TCP behaviour alone (Figure 9).")
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// Quickstart: simulate a small controlled dataset, train the root-cause
// model, and diagnose a fresh faulty session — the end-to-end loop of
// the paper in ~30 lines.
package main

import (
	"fmt"

	"vqprobe"
)

func main() {
	fmt.Println("simulating 300 controlled video sessions (this builds the full")
	fmt.Println("testbed per session: network, TCP, radio, device, player)...")
	train := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 300, Seed: 1})

	model, err := vqprobe.Train(train, vqprobe.IdentifyRootCause, vqprobe.AllVantagePoints)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trained root-cause model; %d features survived selection:\n", len(model.SelectedFeatures()))
	for i, f := range model.SelectedFeatures() {
		if i == 8 {
			fmt.Println("   ...")
			break
		}
		fmt.Printf("   %d. %s\n", i+1, f)
	}

	fmt.Println("\nsimulating 40 fresh sessions and diagnosing each:")
	test := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 40, Seed: 4242})
	correct := 0
	for i, s := range test {
		d := model.DiagnoseSession(s)
		truth := s.Label.ExactClass()
		mark := " "
		if d.Class == truth {
			mark = "*"
			correct++
		}
		if i < 10 {
			fmt.Printf(" %s session %2d: MOS %.2f  predicted %-22s truth %s\n",
				mark, i, s.MOS, d.Class, truth)
		}
	}
	fmt.Printf("   ... %d/%d correct on unseen sessions\n", correct, len(test))
}

// Home-network troubleshooting: the end-user story from the paper's
// Section 7. A phone-only deployment (no router or server cooperation)
// learns to tell whether poor video QoE is the fault of the home
// network, the ISP, or the user's own device — so the user knows whom
// to call before calling anyone.
package main

import (
	"fmt"

	"vqprobe"
)

func main() {
	fmt.Println("training a location model from the MOBILE vantage point only...")
	train := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 500, Seed: 11})
	model, err := vqprobe.Train(train, vqprobe.LocateProblem, []string{vqprobe.VPMobile})
	if err != nil {
		panic(err)
	}

	fmt.Println("replaying a week of living-room streaming with assorted troubles...")
	test := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 120, Seed: 777})

	advice := map[string]string{
		"good":   "nothing to do",
		"mobile": "close background apps / reboot the phone",
		"lan":    "check the WiFi: move closer to the AP or change channel",
		"wan":    "problem beyond your home network: contact the ISP or provider",
	}
	blamed := map[string]int{}
	correct, problems := 0, 0
	for _, s := range test {
		d := model.DiagnoseSession(s)
		blamed[d.Cause]++
		truth := s.Label.LocationClass()
		if truth != "good" {
			problems++
			if d.Class == truth {
				correct++
			}
		}
	}
	fmt.Println("diagnosis summary over 120 sessions:")
	for _, cause := range []string{"good", "mobile", "lan", "wan"} {
		fmt.Printf("  %-7s blamed %3d times -> %s\n", cause, blamed[cause], advice[cause])
	}
	fmt.Printf("\nlocation correctly pinned for %d of %d problematic sessions\n", correct, problems)

	conf, err := model.Evaluate(test)
	if err != nil {
		panic(err)
	}
	fmt.Printf("overall accuracy from the phone alone: %.1f%%\n", conf.Accuracy()*100)
}

// ISP monitoring: the operator story from the paper's Section 7. The
// router/AP vantage point alone — which never inspects payload, so
// encrypted video is no obstacle — detects degraded sessions and tells
// in-network problems from customer-premises ones.
package main

import (
	"fmt"
	"sort"

	"vqprobe"
)

func main() {
	fmt.Println("training severity + location models from the ROUTER vantage point")
	fmt.Println("(transport headers only: works identically for encrypted video)...")
	train := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 500, Seed: 21})

	detect, err := vqprobe.Train(train, vqprobe.DetectSeverity, []string{vqprobe.VPRouter})
	if err != nil {
		panic(err)
	}
	locate, err := vqprobe.Train(train, vqprobe.LocateProblem, []string{vqprobe.VPRouter})
	if err != nil {
		panic(err)
	}

	fmt.Println("monitoring 150 subscriber sessions...")
	live := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 150, Seed: 555})

	tickets := map[string]int{}
	for _, s := range live {
		sev := detect.DiagnoseSession(s)
		if sev.Class == "good" {
			continue
		}
		loc := locate.DiagnoseSession(s)
		switch loc.Cause {
		case "wan":
			tickets["escalate: backbone/peering segment"]++
		case "lan":
			tickets["customer premises (WiFi) - guide the user"]++
		case "mobile":
			tickets["customer device - guide the user"]++
		default:
			tickets["transient - watch"]++
		}
	}
	fmt.Println("generated trouble tickets:")
	kinds := make([]string, 0, len(tickets))
	for k := range tickets {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %3d x %s\n", tickets[k], k)
	}

	conf, err := detect.Evaluate(live)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nrouter-only severity detection accuracy: %.1f%%\n", conf.Accuracy()*100)
	fmt.Printf("good-session recall: %.3f (few false alarms on healthy customers)\n",
		conf.Recall("good"))
}

package vqprobe

// Serving API: the online counterpart of Train/Diagnose. A trained
// Model compiles into an immutable CompiledModel (flat-array tree
// evaluation, no map lookups on the hot path), and an Engine serves
// compiled snapshots behind a sharded ingest pipeline with hot reload
// and built-in observability. cmd/vqserve is a thin daemon over this
// surface; docs/SERVING.md describes the architecture.

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"vqprobe/internal/features"
	"vqprobe/internal/ml/c45"
	"vqprobe/internal/serve"
)

// CompiledModel is the serving-optimized form of a trained Model: the
// feature-construction scales plus the tree flattened for sequential
// evaluation. Snapshots are immutable and safe for concurrent use.
type CompiledModel = serve.Model

// Engine is the online diagnosis engine: sharded workers, bounded
// queues with a backpressure policy, atomic model hot-reload, and an
// HTTP surface (/diagnose, /healthz, /metrics) via Engine.Handler.
type Engine = serve.Engine

// EngineConfig tunes an Engine; the zero value selects NumCPU shards,
// 256-deep queues and blocking backpressure.
type EngineConfig = serve.Config

// ServeRequest is one session submitted to an Engine.
type ServeRequest = serve.Request

// ServeResult is an Engine's answer for one request.
type ServeResult = serve.Result

// Explanation is the recorded decision path behind one prediction:
// every split consulted (with thresholds, observed values and
// fractional weights for missing features) and the leaves that
// contributed. Produced by CompiledModel.DiagnoseExplain or a
// ServeRequest with Explain set; Rule() renders it as one
// human-readable sentence.
type Explanation = c45.Explanation

// ExplainStep is one consulted split in an Explanation's path.
type ExplainStep = c45.PathStep

// CompileModel flattens a trained model into its serving form.
func CompileModel(m *Model) (*CompiledModel, error) {
	ct, err := c45.Compile(m.pipeline.Tree)
	if err != nil {
		return nil, fmt.Errorf("vqprobe: compiling model: %w", err)
	}
	return serve.NewModel(string(m.Task), m.pipeline.Norm, ct), nil
}

// Compile is the method form of CompileModel.
func (m *Model) Compile() (*CompiledModel, error) { return CompileModel(m) }

// FeatureSchema returns the exact feature names the trained tree
// consults, in canonical order — the contract an input CSV header or
// /diagnose feature map is validated against.
func (m *Model) FeatureSchema() []string { return m.pipeline.Tree.Features() }

// snapshotMeta is the caller blob vqprobe writes into c45 binary
// snapshots: everything beyond the compiled predictor needed to
// reconstruct a serving model (the task, vantage points, and the
// feature-construction scales).
type snapshotMeta struct {
	Task   Task               `json:"task"`
	VPs    []string           `json:"vps,omitempty"`
	Scales map[string]float64 `json:"scales,omitempty"`
}

// SaveSnapshot writes the model's compiled serving form as a binary
// c45 snapshot (see internal/ml/c45/snapshot.go for the format).
// Unlike the JSON form, loading a snapshot is a single sequential read
// plus a bounds-checked decode — no parsing, no re-compilation — so
// vqserve's reload cost stays flat as models grow.
func (m *Model) SaveSnapshot(w io.Writer) error {
	ct, err := c45.Compile(m.pipeline.Tree)
	if err != nil {
		return fmt.Errorf("vqprobe: compiling model for snapshot: %w", err)
	}
	meta, err := json.Marshal(snapshotMeta{Task: m.Task, VPs: m.VPs, Scales: m.pipeline.Norm.Scales()})
	if err != nil {
		return fmt.Errorf("vqprobe: encoding snapshot meta: %w", err)
	}
	return c45.WriteSnapshot(w, ct, meta)
}

// LoadServingModel loads a serving model from disk, accepting both
// model formats by sniffing the file: vqtrain's JSON (parsed and
// re-compiled) and the binary c45 snapshot written by SaveSnapshot or
// vqtrain -emit-snapshot (single-read decode; may hold a tree or a
// forest). Provenance — the file's content hash and the measured load
// time — is recorded on the returned model and surfaces on /healthz
// and the vqserve_model_* gauges.
func LoadServingModel(path string) (*CompiledModel, error) {
	//lint:ignore virtclock snapshot load time is real-world provenance, recorded for /healthz
	start := time.Now()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cm *CompiledModel
	if c45.IsSnapshot(data) {
		bp, metaRaw, err := c45.ReadSnapshot(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		var meta snapshotMeta
		if len(metaRaw) > 0 {
			if err := json.Unmarshal(metaRaw, &meta); err != nil {
				return nil, fmt.Errorf("vqprobe: %s: decoding snapshot meta: %w", path, err)
			}
		}
		cm = serve.NewBatchModel(string(meta.Task), features.NormalizerFromScales(meta.Scales), bp)
	} else {
		m, err := LoadModel(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if cm, err = CompileModel(m); err != nil {
			return nil, err
		}
	}
	sum := sha256.Sum256(data)
	//lint:ignore virtclock snapshot load time is real-world provenance, recorded for /healthz
	cm.SetProvenance(fmt.Sprintf("%x", sum[:6]), time.Since(start))
	return cm, nil
}

// ModelInfo describes a loaded serving model: kind (tree/forest),
// ensemble size, node count, and — when loaded from disk — the file's
// content hash and load time.
type ModelInfo = serve.ModelInfo

// NewEngine starts an engine serving the given compiled snapshot.
// Close it to drain.
func NewEngine(m *CompiledModel, cfg EngineConfig) *Engine {
	return serve.NewEngine(m, cfg)
}

// ValidateFeatures rejects feature vectors carrying NaN or ±Inf values
// — NaN is the pipeline's missing-value sentinel, so letting one in
// would silently classify the record down every split's missing-value
// path. The Engine applies this check to every request; callers using
// CompiledModel.Diagnose directly should apply it themselves.
func ValidateFeatures(fv map[string]float64) error {
	return serve.ValidateFeatures(fv)
}

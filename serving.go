package vqprobe

// Serving API: the online counterpart of Train/Diagnose. A trained
// Model compiles into an immutable CompiledModel (flat-array tree
// evaluation, no map lookups on the hot path), and an Engine serves
// compiled snapshots behind a sharded ingest pipeline with hot reload
// and built-in observability. cmd/vqserve is a thin daemon over this
// surface; docs/SERVING.md describes the architecture.

import (
	"fmt"

	"vqprobe/internal/ml/c45"
	"vqprobe/internal/serve"
)

// CompiledModel is the serving-optimized form of a trained Model: the
// feature-construction scales plus the tree flattened for sequential
// evaluation. Snapshots are immutable and safe for concurrent use.
type CompiledModel = serve.Model

// Engine is the online diagnosis engine: sharded workers, bounded
// queues with a backpressure policy, atomic model hot-reload, and an
// HTTP surface (/diagnose, /healthz, /metrics) via Engine.Handler.
type Engine = serve.Engine

// EngineConfig tunes an Engine; the zero value selects NumCPU shards,
// 256-deep queues and blocking backpressure.
type EngineConfig = serve.Config

// ServeRequest is one session submitted to an Engine.
type ServeRequest = serve.Request

// ServeResult is an Engine's answer for one request.
type ServeResult = serve.Result

// Explanation is the recorded decision path behind one prediction:
// every split consulted (with thresholds, observed values and
// fractional weights for missing features) and the leaves that
// contributed. Produced by CompiledModel.DiagnoseExplain or a
// ServeRequest with Explain set; Rule() renders it as one
// human-readable sentence.
type Explanation = c45.Explanation

// ExplainStep is one consulted split in an Explanation's path.
type ExplainStep = c45.PathStep

// CompileModel flattens a trained model into its serving form.
func CompileModel(m *Model) (*CompiledModel, error) {
	ct, err := c45.Compile(m.pipeline.Tree)
	if err != nil {
		return nil, fmt.Errorf("vqprobe: compiling model: %w", err)
	}
	return serve.NewModel(string(m.Task), m.pipeline.Norm, ct), nil
}

// Compile is the method form of CompileModel.
func (m *Model) Compile() (*CompiledModel, error) { return CompileModel(m) }

// FeatureSchema returns the exact feature names the trained tree
// consults, in canonical order — the contract an input CSV header or
// /diagnose feature map is validated against.
func (m *Model) FeatureSchema() []string { return m.pipeline.Tree.Features() }

// NewEngine starts an engine serving the given compiled snapshot.
// Close it to drain.
func NewEngine(m *CompiledModel, cfg EngineConfig) *Engine {
	return serve.NewEngine(m, cfg)
}

// ValidateFeatures rejects feature vectors carrying NaN or ±Inf values
// — NaN is the pipeline's missing-value sentinel, so letting one in
// would silently classify the record down every split's missing-value
// path. The Engine applies this check to every request; callers using
// CompiledModel.Diagnose directly should apply it themselves.
func ValidateFeatures(fv map[string]float64) error {
	return serve.ValidateFeatures(fv)
}
